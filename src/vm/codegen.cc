#include "vm/codegen.h"

#include <deque>
#include <unordered_map>
#include <vector>

#include "core/analysis.h"
#include "core/primitive.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace tml::vm {

using ir::Abstraction;
using ir::Application;
using ir::Cast;
using ir::DynCast;
using ir::Isa;
using ir::LitKind;
using ir::Literal;
using ir::PrimOp;
using ir::Variable;

namespace {

/// How a continuation argument is realized in bytecode.
struct ContTarget {
  enum Kind {
    kReturn,  ///< the function's own cc: RET
    kRaise,   ///< the function's own ce: RAISE
    kBlock,   ///< a basic block with fixed parameter registers
    kInline,  ///< a cont abstraction compiled at the (single) use site
  };
  Kind kind = kReturn;
  int label = -1;
  std::vector<uint16_t> params;      // kBlock
  const Abstraction* abs = nullptr;  // kInline
};

class FnCompiler {
 public:
  FnCompiler(CodeUnit* unit, const ir::Module& m, Function* fn)
      : unit_(unit), m_(m), fn_(fn) {}

  Status Compile(const Abstraction* proc) {
    if (proc->num_cont_params() != 2) {
      return Err("codegen: procedure must take (ce cc)");
    }
    size_t n = proc->num_params();
    const Variable* ce = proc->param(n - 2);
    const Variable* cc = proc->param(n - 1);
    if (!ce->is_cont() || !cc->is_cont()) {
      return Err("codegen: trailing parameters must be continuations");
    }
    fn_->num_params = static_cast<uint32_t>(n - 2);
    for (size_t i = 0; i + 2 < n; ++i) {
      if (proc->param(i)->is_cont()) {
        return Err("codegen: continuation escapes into a value parameter");
      }
      var_reg_[proc->param(i)] = AllocReg();
    }
    cont_map_[ce] = ContTarget{ContTarget::kRaise, -1, {}, nullptr};
    cont_map_[cc] = ContTarget{ContTarget::kReturn, -1, {}, nullptr};

    // Prologue: load captures (free variables) into registers.
    auto frees = ir::FreeVariables(proc);
    for (size_t i = 0; i < frees.size(); ++i) {
      const Variable* fv = frees[i];
      if (fv->is_cont()) {
        return Err("codegen: continuation escapes into a closure");
      }
      uint16_t r = AllocReg();
      var_reg_[fv] = r;
      Emit({Op::kGetCap, r, static_cast<uint16_t>(i), 0, 0, -1});
      fn_->cap_names.emplace_back(m_.NameOf(*fv));
    }

    TML_RETURN_NOT_OK(CompileApp(proc->body()));
    TML_RETURN_NOT_OK(DrainPending());
    TML_RETURN_NOT_OK(ResolveLabels());
    fn_->num_regs = next_reg_;
    return Status::OK();
  }

 private:
  // ---- low-level helpers -------------------------------------------------

  uint16_t AllocReg() {
    if (next_reg_ == UINT16_MAX) return UINT16_MAX;  // caught by num_regs cap
    return next_reg_++;
  }

  void Emit(Instr in) { fn_->code.push_back(in); }

  int NewLabel() {
    labels_.push_back(-1);
    return static_cast<int>(labels_.size()) - 1;
  }
  void Place(int label) {
    labels_[label] = static_cast<int32_t>(fn_->code.size());
  }
  /// Emit an instruction whose `d` is a label (resolved later).
  void EmitJump(Instr in, int label) {
    in.d = label;
    jump_fixups_.push_back(fn_->code.size());
    fn_->code.push_back(in);
  }
  /// Allocate a fail-info slot whose target is a label.
  int32_t NewFail(int label, uint16_t exn_reg) {
    fn_->fail_infos.push_back(FailInfo{label, exn_reg});
    fail_fixups_.push_back(fn_->fail_infos.size() - 1);
    return static_cast<int32_t>(fn_->fail_infos.size()) - 1;
  }

  Status ResolveLabels() {
    for (size_t idx : jump_fixups_) {
      int label = fn_->code[idx].d;
      if (label < 0 || labels_[label] < 0) {
        return Err("codegen: unresolved label");
      }
      fn_->code[idx].d = labels_[label];
    }
    for (size_t idx : fail_fixups_) {
      int label = fn_->fail_infos[idx].target;
      if (label < 0 || labels_[label] < 0) {
        return Err("codegen: unresolved fail label");
      }
      fn_->fail_infos[idx].target = labels_[label];
    }
    return Status::OK();
  }

  uint16_t PoolConst(Constant c) {
    for (size_t i = 0; i < fn_->pool.size(); ++i) {
      if (fn_->pool[i] == c) return static_cast<uint16_t>(i);
    }
    fn_->pool.push_back(std::move(c));
    return static_cast<uint16_t>(fn_->pool.size() - 1);
  }

  Result<Constant> LitConst(const Literal* lit) {
    switch (lit->lit_kind()) {
      case LitKind::kNil:
        return Constant::Nil();
      case LitKind::kBool:
        return Constant::Bool(lit->bool_value());
      case LitKind::kInt:
        return Constant::Int(lit->int_value());
      case LitKind::kChar:
        return Constant::Char(lit->char_value());
      case LitKind::kReal:
        return Constant::Real(lit->real_value());
      case LitKind::kString:
        return Constant::Str(std::string(lit->string_value()));
    }
    return Err("codegen: bad literal");
  }

  // Materialize a value into a register.
  Result<uint16_t> ValueReg(const ir::Value* v) {
    switch (v->kind()) {
      case ir::NodeKind::kLiteral: {
        TML_ASSIGN_OR_RETURN(Constant c, LitConst(Cast<Literal>(v)));
        uint16_t r = AllocReg();
        Emit({Op::kLoadK, r, 0, 0, PoolConst(std::move(c)), -1});
        return r;
      }
      case ir::NodeKind::kOid: {
        uint16_t r = AllocReg();
        Emit({Op::kLoadK, r, 0, 0,
              PoolConst(Constant::OidC(Cast<ir::OidRef>(v)->oid())), -1});
        return r;
      }
      case ir::NodeKind::kVariable: {
        const Variable* var = Cast<Variable>(v);
        if (var->is_cont()) {
          return Err("codegen: continuation escapes to value position: " +
                     std::string(m_.NameOf(*var)));
        }
        auto it = var_reg_.find(var);
        if (it == var_reg_.end()) {
          return Err("codegen: unbound variable " +
                     std::string(m_.NameOf(*var)));
        }
        return it->second;
      }
      case ir::NodeKind::kAbstraction: {
        const Abstraction* abs = Cast<Abstraction>(v);
        if (abs->is_cont()) {
          return Err("codegen: continuation abstraction in value position");
        }
        uint16_t r = AllocReg();
        TML_RETURN_NOT_OK(EmitClosure(abs, r));
        return r;
      }
      case ir::NodeKind::kPrimitive:
        return Err("codegen: primitive used as a first-class value");
      case ir::NodeKind::kApplication:
        return Err("codegen: application in value position");
    }
    return Err("codegen: bad value");
  }

  /// Compile `abs` as a subfunction and emit closure creation + capture
  /// initialization into `dst`.
  Status EmitClosure(const Abstraction* abs, uint16_t dst) {
    Function* sub = unit_->NewFunction();
    sub->name = fn_->name + "." + std::to_string(fn_->subfns.size());
    FnCompiler inner(unit_, m_, sub);
    TML_RETURN_NOT_OK(inner.Compile(abs));
    fn_->subfns.push_back(sub);
    uint16_t ncaps = static_cast<uint16_t>(sub->cap_names.size());
    Emit({Op::kClosure, dst, 0, ncaps,
          static_cast<int32_t>(fn_->subfns.size()) - 1, -1});
    auto frees = ir::FreeVariables(abs);
    for (size_t i = 0; i < frees.size(); ++i) {
      TML_ASSIGN_OR_RETURN(uint16_t r, ValueReg(frees[i]));
      Emit({Op::kSetCap, dst, static_cast<uint16_t>(i), r, 0, -1});
    }
    return Status::OK();
  }

  // Resolve a continuation argument.
  Result<ContTarget> ContOf(const ir::Value* v) {
    if (const Variable* var = DynCast<Variable>(v)) {
      auto it = cont_map_.find(var);
      if (it == cont_map_.end()) {
        return Err("codegen: unbound continuation " +
                   std::string(m_.NameOf(*var)));
      }
      return it->second;
    }
    if (const Abstraction* abs = DynCast<Abstraction>(v)) {
      if (!abs->is_cont()) {
        return Err("codegen: proc abstraction used as continuation");
      }
      ContTarget t;
      t.kind = ContTarget::kInline;
      t.abs = abs;
      return t;
    }
    return Err("codegen: bad continuation operand");
  }

  /// Turn an inline cont into a pending block (used where a jump target is
  /// required: branches, case dispatch, fail handlers).
  Result<ContTarget> AsBlock(ContTarget t) {
    if (t.kind != ContTarget::kInline) return t;
    ContTarget b;
    b.kind = ContTarget::kBlock;
    b.label = NewLabel();
    for (size_t i = 0; i < t.abs->num_params(); ++i) {
      b.params.push_back(AllocReg());
    }
    pending_.push_back(PendingBlock{t.abs, b.label, b.params, false});
    return b;
  }

  /// A fail-info for an exception continuation; -1 when it unwinds.
  Result<int32_t> FailOf(const ir::Value* ce) {
    TML_ASSIGN_OR_RETURN(ContTarget t, ContOf(ce));
    switch (t.kind) {
      case ContTarget::kRaise:
        return -1;  // propagate: unwind through the handler stack
      case ContTarget::kReturn: {
        // Return the exception value: synthesize a `ret` stub block.
        int label = NewLabel();
        uint16_t r = AllocReg();
        pending_.push_back(PendingBlock{nullptr, label, {r}, true});
        return NewFail(label, r);
      }
      case ContTarget::kBlock: {
        if (t.params.size() != 1) {
          return Err("codegen: exception handler must take one value");
        }
        return NewFail(t.label, t.params[0]);
      }
      case ContTarget::kInline: {
        TML_ASSIGN_OR_RETURN(ContTarget b, AsBlock(t));
        if (b.params.size() != 1) {
          return Err("codegen: exception handler must take one value");
        }
        return NewFail(b.label, b.params[0]);
      }
    }
    return Err("codegen: bad exception continuation");
  }

  /// Move `args` into `params` without clobbering (two-phase when needed).
  void ParallelMove(const std::vector<uint16_t>& params,
                    const std::vector<uint16_t>& args) {
    bool overlap = false;
    for (size_t i = 0; i < params.size(); ++i) {
      for (size_t j = 0; j < args.size(); ++j) {
        if (i != j && params[i] == args[j]) overlap = true;
      }
    }
    if (!overlap) {
      for (size_t i = 0; i < params.size(); ++i) {
        if (params[i] != args[i]) {
          Emit({Op::kMove, params[i], args[i], 0, 0, -1});
        }
      }
      return;
    }
    std::vector<uint16_t> temps;
    for (size_t i = 0; i < args.size(); ++i) {
      uint16_t t = AllocReg();
      temps.push_back(t);
      Emit({Op::kMove, t, args[i], 0, 0, -1});
    }
    for (size_t i = 0; i < params.size(); ++i) {
      Emit({Op::kMove, params[i], temps[i], 0, 0, -1});
    }
  }

  /// Transfer control to a continuation with the given argument registers.
  Status ApplyCont(const ContTarget& t, const std::vector<uint16_t>& args) {
    switch (t.kind) {
      case ContTarget::kReturn:
        if (args.size() != 1) {
          return Err("codegen: cc applied to " + std::to_string(args.size()) +
                     " values");
        }
        Emit({Op::kRet, args[0], 0, 0, 0, -1});
        return Status::OK();
      case ContTarget::kRaise:
        if (args.size() != 1) return Err("codegen: ce needs one value");
        Emit({Op::kRaise, args[0], 0, 0, 0, -1});
        return Status::OK();
      case ContTarget::kBlock: {
        if (args.size() != t.params.size()) {
          return Err("codegen: block arity mismatch");
        }
        ParallelMove(t.params, args);
        EmitJump({Op::kJmp, 0, 0, 0, 0, -1}, t.label);
        return Status::OK();
      }
      case ContTarget::kInline: {
        if (args.size() != t.abs->num_params()) {
          return Err("codegen: continuation arity mismatch");
        }
        for (size_t i = 0; i < args.size(); ++i) {
          TML_RETURN_NOT_OK(BindParam(t.abs->param(i), args[i]));
        }
        return CompileApp(t.abs->body());
      }
    }
    return Err("codegen: bad continuation target");
  }

  /// Where a value-producing instruction should put its result, given the
  /// normal continuation; returns the dst register, and `Complete` finishes
  /// control flow after the instruction was emitted.
  struct Dest {
    uint16_t reg;
    ContTarget target;
  };
  Result<Dest> DestOf(const ir::Value* cc) {
    TML_ASSIGN_OR_RETURN(ContTarget t, ContOf(cc));
    Dest d;
    d.target = t;
    switch (t.kind) {
      case ContTarget::kReturn:
      case ContTarget::kRaise:
        d.reg = AllocReg();
        return d;
      case ContTarget::kBlock:
        if (t.params.size() != 1) {
          return Err("codegen: result continuation must take one value");
        }
        d.reg = t.params[0];
        return d;
      case ContTarget::kInline:
        if (t.abs->num_params() != 1) {
          return Err("codegen: result continuation must take one value");
        }
        d.reg = AllocReg();
        return d;
    }
    return Err("codegen: bad destination");
  }
  Status Complete(const Dest& d) {
    switch (d.target.kind) {
      case ContTarget::kReturn:
        Emit({Op::kRet, d.reg, 0, 0, 0, -1});
        return Status::OK();
      case ContTarget::kRaise:
        Emit({Op::kRaise, d.reg, 0, 0, 0, -1});
        return Status::OK();
      case ContTarget::kBlock:
        EmitJump({Op::kJmp, 0, 0, 0, 0, -1}, d.target.label);
        return Status::OK();
      case ContTarget::kInline:
        TML_RETURN_NOT_OK(BindParam(d.target.abs->param(0), d.reg));
        return CompileApp(d.target.abs->body());
    }
    return Err("codegen: bad completion");
  }

  Status BindParam(const Variable* param, uint16_t reg) {
    if (param->is_cont()) {
      return Err("codegen: value bound to continuation parameter");
    }
    var_reg_[param] = reg;
    return Status::OK();
  }

  // ---- application dispatch ----------------------------------------------

  Status CompileApp(const Application* app) {
    const ir::Value* callee = app->callee();
    if (const ir::PrimRef* pr = DynCast<ir::PrimRef>(callee)) {
      return CompilePrim(pr->prim(), app);
    }
    if (const Abstraction* abs = DynCast<Abstraction>(callee)) {
      return CompileLet(abs, app);
    }
    if (const Variable* var = DynCast<Variable>(callee)) {
      if (var->is_cont()) {
        auto it = cont_map_.find(var);
        if (it == cont_map_.end()) {
          return Err("codegen: unbound continuation " +
                     std::string(m_.NameOf(*var)));
        }
        std::vector<uint16_t> args;
        for (const ir::Value* a : app->args()) {
          TML_ASSIGN_OR_RETURN(uint16_t r, ValueReg(a));
          args.push_back(r);
        }
        return ApplyCont(it->second, args);
      }
      return CompileCall(app);
    }
    if (Isa<ir::OidRef>(callee)) return CompileCall(app);
    return Err("codegen: bad callee");
  }

  // ((λ(v1..vk) body) a1..ak): a residual let binding.
  Status CompileLet(const Abstraction* abs, const Application* app) {
    if (abs->num_params() != app->num_args()) {
      return Err("codegen: let arity mismatch");
    }
    for (size_t i = 0; i < app->num_args(); ++i) {
      const Variable* p = abs->param(i);
      const ir::Value* a = app->arg(i);
      if (p->is_cont()) {
        TML_ASSIGN_OR_RETURN(ContTarget t, ContOf(a));
        // A multiply-used continuation binding becomes a block.
        TML_ASSIGN_OR_RETURN(t, AsBlock(t));
        cont_map_[p] = t;
      } else {
        TML_ASSIGN_OR_RETURN(uint16_t r, ValueReg(a));
        TML_RETURN_NOT_OK(BindParam(p, r));
      }
    }
    return CompileApp(abs->body());
  }

  // (f a1..an ce cc) — a user-level procedure call.
  Status CompileCall(const Application* app) {
    if (app->num_args() < 2) return Err("codegen: call needs (ce cc)");
    TML_ASSIGN_OR_RETURN(uint16_t fr, ValueReg(app->callee()));
    size_t n = app->num_args() - 2;
    // Argument window must be contiguous.
    uint16_t base = next_reg_;
    for (size_t i = 0; i < n; ++i) AllocReg();
    for (size_t i = 0; i < n; ++i) {
      TML_ASSIGN_OR_RETURN(uint16_t r, ValueReg(app->arg(i)));
      Emit({Op::kMove, static_cast<uint16_t>(base + i), r, 0, 0, -1});
    }
    const ir::Value* ce = app->arg(app->num_args() - 2);
    const ir::Value* cc = app->arg(app->num_args() - 1);
    TML_ASSIGN_OR_RETURN(ContTarget ce_t, ContOf(ce));
    bool local_handler = ce_t.kind != ContTarget::kRaise;
    TML_ASSIGN_OR_RETURN(ContTarget cc_t, ContOf(cc));

    if (!local_handler && cc_t.kind == ContTarget::kReturn) {
      Emit({Op::kTailCall, 0, fr, base, static_cast<int32_t>(n), -1});
      return Status::OK();
    }
    int32_t fail = -1;
    if (local_handler) {
      TML_ASSIGN_OR_RETURN(fail, FailOf(ce));
      Emit({Op::kPushH, 0, 0, 0, fail, -1});
    }
    Dest d;
    d.target = cc_t;
    switch (cc_t.kind) {
      case ContTarget::kBlock:
        if (cc_t.params.size() != 1) {
          return Err("codegen: call continuation must take one value");
        }
        d.reg = cc_t.params[0];
        break;
      case ContTarget::kInline:
        if (cc_t.abs->num_params() != 1) {
          return Err("codegen: call continuation must take one value");
        }
        d.reg = AllocReg();
        break;
      default:
        d.reg = AllocReg();
        break;
    }
    Emit({Op::kCall, d.reg, fr, base, static_cast<int32_t>(n), -1});
    if (local_handler) Emit({Op::kPopH, 0, 0, 0, 0, -1});
    return Complete(d);
  }

  // ---- primitives ----------------------------------------------------------

  Status CompilePrim(const ir::Primitive& prim, const Application* app) {
    switch (prim.op()) {
      case PrimOp::kAddI: return Arith(Op::kAddI, app);
      case PrimOp::kSubI: return Arith(Op::kSubI, app);
      case PrimOp::kMulI: return Arith(Op::kMulI, app);
      case PrimOp::kDivI: return Arith(Op::kDivI, app);
      case PrimOp::kModI: return Arith(Op::kModI, app);
      case PrimOp::kAddR: return Arith(Op::kAddR, app);
      case PrimOp::kSubR: return Arith(Op::kSubR, app);
      case PrimOp::kMulR: return Arith(Op::kMulR, app);
      case PrimOp::kDivR: return Arith(Op::kDivR, app);
      case PrimOp::kLtI: return Branch(Op::kBrLtI, app, false);
      case PrimOp::kGtI: return Branch(Op::kBrLtI, app, true);
      case PrimOp::kLeI: return Branch(Op::kBrLeI, app, false);
      case PrimOp::kGeI: return Branch(Op::kBrLeI, app, true);
      case PrimOp::kLtR: return Branch(Op::kBrLtR, app, false);
      case PrimOp::kLeR: return Branch(Op::kBrLeR, app, false);
      case PrimOp::kEqB: return Branch(Op::kBrEq, app, false);
      case PrimOp::kShl: return Pure2(Op::kShl, app);
      case PrimOp::kShr: return Pure2(Op::kShr, app);
      case PrimOp::kBitAnd: return Pure2(Op::kBitAnd, app);
      case PrimOp::kBitOr: return Pure2(Op::kBitOr, app);
      case PrimOp::kBitXor: return Pure2(Op::kBitXor, app);
      case PrimOp::kAnd: return Pure2(Op::kAndB, app);
      case PrimOp::kOr: return Pure2(Op::kOrB, app);
      case PrimOp::kNot: return Pure1(Op::kNotB, app);
      case PrimOp::kChar2Int: return Pure1(Op::kC2I, app);
      case PrimOp::kInt2Char: return Pure1(Op::kI2C, app);
      case PrimOp::kIntToReal: return Pure1(Op::kI2R, app);
      case PrimOp::kTruncR: return Pure1(Op::kR2I, app);
      case PrimOp::kSqrt: return Fallible1(Op::kSqrt, app);
      case PrimOp::kArray: return NewAgg(Op::kNewArray, app);
      case PrimOp::kVector: return NewAgg(Op::kNewVector, app);
      case PrimOp::kNewByteArray: return NewBytes(app);
      case PrimOp::kMkArray: return MkArray(app);
      case PrimOp::kALoad: return Load(Op::kALoad, app);
      case PrimOp::kBLoad: return Load(Op::kBLoad, app);
      case PrimOp::kAStore: return StoreOp(Op::kAStore, app);
      case PrimOp::kBStore: return StoreOp(Op::kBStore, app);
      case PrimOp::kSize: return Pure1(Op::kSize, app);
      case PrimOp::kMove: return MoveN(Op::kMoveN, app);
      case PrimOp::kBMove: return MoveN(Op::kBMoveN, app);
      case PrimOp::kCase: return CaseOp(app);
      case PrimOp::kY: return FixY(app);
      case PrimOp::kPushHandler: return PushHandler(app);
      case PrimOp::kPopHandler: return PopHandler(app);
      case PrimOp::kRaise: return RaiseOp(app);
      case PrimOp::kCCall: return CCallOp(app);
      case PrimOp::kSelect: return Query2(Op::kSelect, app);
      case PrimOp::kProject: return Query2(Op::kProject, app);
      case PrimOp::kExists: return Query2(Op::kExists, app);
      case PrimOp::kQJoin: return JoinOp(app);
      case PrimOp::kEmpty: return QueryCard(Op::kEmpty, app);
      case PrimOp::kQCount: return QueryCard(Op::kCount, app);
      default:
        return Err("codegen: unsupported primitive " +
                   std::string(prim.name()));
    }
  }

  // (p a b ce cc)
  Status Arith(Op op, const Application* app) {
    if (app->num_args() != 4) return Err("codegen: arith arity");
    TML_ASSIGN_OR_RETURN(uint16_t ra, ValueReg(app->arg(0)));
    TML_ASSIGN_OR_RETURN(uint16_t rb, ValueReg(app->arg(1)));
    TML_ASSIGN_OR_RETURN(int32_t fail, FailOf(app->arg(2)));
    TML_ASSIGN_OR_RETURN(Dest d, DestOf(app->arg(3)));
    Emit({op, d.reg, ra, rb, 0, fail});
    return Complete(d);
  }

  // (p a b c)
  Status Pure2(Op op, const Application* app) {
    if (app->num_args() != 3) return Err("codegen: binop arity");
    TML_ASSIGN_OR_RETURN(uint16_t ra, ValueReg(app->arg(0)));
    TML_ASSIGN_OR_RETURN(uint16_t rb, ValueReg(app->arg(1)));
    TML_ASSIGN_OR_RETURN(Dest d, DestOf(app->arg(2)));
    Emit({op, d.reg, ra, rb, 0, -1});
    return Complete(d);
  }

  // (p a c)
  Status Pure1(Op op, const Application* app) {
    if (app->num_args() != 2) return Err("codegen: unop arity");
    TML_ASSIGN_OR_RETURN(uint16_t ra, ValueReg(app->arg(0)));
    TML_ASSIGN_OR_RETURN(Dest d, DestOf(app->arg(1)));
    Emit({op, d.reg, ra, 0, 0, -1});
    return Complete(d);
  }

  // (p a ce cc)
  Status Fallible1(Op op, const Application* app) {
    if (app->num_args() != 3) return Err("codegen: fallible unop arity");
    TML_ASSIGN_OR_RETURN(uint16_t ra, ValueReg(app->arg(0)));
    TML_ASSIGN_OR_RETURN(int32_t fail, FailOf(app->arg(1)));
    TML_ASSIGN_OR_RETURN(Dest d, DestOf(app->arg(2)));
    Emit({op, d.reg, ra, 0, 0, fail});
    return Complete(d);
  }

  // (p a b c_then c_else): conditional transfer; `swap` for > and >=.
  Status Branch(Op op, const Application* app, bool swap) {
    if (app->num_args() != 4) return Err("codegen: branch arity");
    TML_ASSIGN_OR_RETURN(uint16_t ra, ValueReg(app->arg(swap ? 1 : 0)));
    TML_ASSIGN_OR_RETURN(uint16_t rb, ValueReg(app->arg(swap ? 0 : 1)));
    TML_ASSIGN_OR_RETURN(ContTarget then_t, ContOf(app->arg(2)));
    TML_ASSIGN_OR_RETURN(ContTarget else_t, ContOf(app->arg(3)));
    if (then_t.kind == ContTarget::kInline) {
      TML_ASSIGN_OR_RETURN(then_t, AsBlock(then_t));
    }
    if (!then_t.params.empty() || then_t.kind != ContTarget::kBlock) {
      return Err("codegen: branch continuation must be cont()");
    }
    EmitJump({op, 0, ra, rb, 0, -1}, then_t.label);
    // Else path falls through.
    switch (else_t.kind) {
      case ContTarget::kInline:
        if (else_t.abs->num_params() != 0) {
          return Err("codegen: branch continuation must be cont()");
        }
        return CompileApp(else_t.abs->body());
      case ContTarget::kBlock:
        if (!else_t.params.empty()) {
          return Err("codegen: branch continuation must be cont()");
        }
        EmitJump({Op::kJmp, 0, 0, 0, 0, -1}, else_t.label);
        return Status::OK();
      default:
        return Err("codegen: branch continuation must be cont()");
    }
  }

  // (array v1..vn c) / (vector v1..vn c)
  Status NewAgg(Op op, const Application* app) {
    if (app->num_args() < 1) return Err("codegen: array arity");
    size_t n = app->num_args() - 1;
    uint16_t base = next_reg_;
    for (size_t i = 0; i < n; ++i) AllocReg();
    for (size_t i = 0; i < n; ++i) {
      TML_ASSIGN_OR_RETURN(uint16_t r, ValueReg(app->arg(i)));
      Emit({Op::kMove, static_cast<uint16_t>(base + i), r, 0, 0, -1});
    }
    TML_ASSIGN_OR_RETURN(Dest d, DestOf(app->arg(n)));
    Emit({op, d.reg, base, static_cast<uint16_t>(n), 0, -1});
    return Complete(d);
  }

  // (mkarray n init ce cc)
  Status MkArray(const Application* app) {
    if (app->num_args() != 4) return Err("codegen: mkarray arity");
    TML_ASSIGN_OR_RETURN(uint16_t rn, ValueReg(app->arg(0)));
    TML_ASSIGN_OR_RETURN(uint16_t ri, ValueReg(app->arg(1)));
    TML_ASSIGN_OR_RETURN(int32_t fail, FailOf(app->arg(2)));
    TML_ASSIGN_OR_RETURN(Dest d, DestOf(app->arg(3)));
    Emit({Op::kNewArrN, d.reg, rn, ri, 0, fail});
    return Complete(d);
  }

  // (new n init c)
  Status NewBytes(const Application* app) {
    if (app->num_args() != 3) return Err("codegen: new arity");
    TML_ASSIGN_OR_RETURN(uint16_t rn, ValueReg(app->arg(0)));
    TML_ASSIGN_OR_RETURN(uint16_t ri, ValueReg(app->arg(1)));
    TML_ASSIGN_OR_RETURN(Dest d, DestOf(app->arg(2)));
    Emit({Op::kNewBytes, d.reg, rn, ri, 0, -1});
    return Complete(d);
  }

  // ([] arr i ce cc)
  Status Load(Op op, const Application* app) {
    if (app->num_args() != 4) return Err("codegen: load arity");
    TML_ASSIGN_OR_RETURN(uint16_t ra, ValueReg(app->arg(0)));
    TML_ASSIGN_OR_RETURN(uint16_t ri, ValueReg(app->arg(1)));
    TML_ASSIGN_OR_RETURN(int32_t fail, FailOf(app->arg(2)));
    TML_ASSIGN_OR_RETURN(Dest d, DestOf(app->arg(3)));
    Emit({op, d.reg, ra, ri, 0, fail});
    return Complete(d);
  }

  // ([]:= arr i v ce cc) — the continuation receives nil.
  Status StoreOp(Op op, const Application* app) {
    if (app->num_args() != 5) return Err("codegen: store arity");
    TML_ASSIGN_OR_RETURN(uint16_t ra, ValueReg(app->arg(0)));
    TML_ASSIGN_OR_RETURN(uint16_t ri, ValueReg(app->arg(1)));
    TML_ASSIGN_OR_RETURN(uint16_t rv, ValueReg(app->arg(2)));
    TML_ASSIGN_OR_RETURN(int32_t fail, FailOf(app->arg(3)));
    TML_ASSIGN_OR_RETURN(Dest d, DestOf(app->arg(4)));
    Emit({op, ra, ri, rv, 0, fail});
    Emit({Op::kLoadK, d.reg, 0, 0, PoolConst(Constant::Nil()), -1});
    return Complete(d);
  }

  // (move dst doff src soff n c)
  Status MoveN(Op op, const Application* app) {
    if (app->num_args() != 6) return Err("codegen: move arity");
    uint16_t base = next_reg_;
    for (int i = 0; i < 5; ++i) AllocReg();
    for (int i = 0; i < 5; ++i) {
      TML_ASSIGN_OR_RETURN(uint16_t r, ValueReg(app->arg(i)));
      Emit({Op::kMove, static_cast<uint16_t>(base + i), r, 0, 0, -1});
    }
    TML_ASSIGN_OR_RETURN(Dest d, DestOf(app->arg(5)));
    Emit({op, base, 0, 0, 0, -1});
    Emit({Op::kLoadK, d.reg, 0, 0, PoolConst(Constant::Nil()), -1});
    return Complete(d);
  }

  // (== v t1..tn c1..cn [celse])
  Status CaseOp(const Application* app) {
    if (app->num_args() < 3) return Err("codegen: case arity");
    TML_ASSIGN_OR_RETURN(uint16_t rv, ValueReg(app->arg(0)));
    size_t num_tags = 0;
    while (1 + num_tags < app->num_args() &&
           Isa<Literal>(app->arg(1 + num_tags))) {
      ++num_tags;
    }
    size_t num_conts = app->num_args() - 1 - num_tags;
    if (num_tags == 0 ||
        (num_conts != num_tags && num_conts != num_tags + 1)) {
      return Err("codegen: malformed case");
    }
    bool has_else = num_conts == num_tags + 1;
    std::vector<ContTarget> branches;
    for (size_t i = 0; i < num_conts; ++i) {
      TML_ASSIGN_OR_RETURN(ContTarget t,
                           ContOf(app->arg(1 + num_tags + i)));
      TML_ASSIGN_OR_RETURN(t, AsBlock(t));
      if (t.kind != ContTarget::kBlock || !t.params.empty()) {
        return Err("codegen: case branch must be cont()");
      }
      branches.push_back(t);
    }
    for (size_t i = 0; i < num_tags; ++i) {
      TML_ASSIGN_OR_RETURN(Constant c,
                           LitConst(Cast<Literal>(app->arg(1 + i))));
      EmitJump({Op::kCaseEq, 0, rv, PoolConst(std::move(c)), 0, -1},
               branches[i].label);
    }
    if (has_else) {
      EmitJump({Op::kJmp, 0, 0, 0, 0, -1}, branches.back().label);
    } else {
      // No match and no else: raise the scrutinee.
      Emit({Op::kRaise, rv, 0, 0, 0, -1});
    }
    return Status::OK();
  }

  // (Y λ(c0 v1..vn c)(c k0 abs1..absn))
  Status FixY(const Application* app) {
    const Abstraction* gen = app->num_args() == 1
                                 ? DynCast<Abstraction>(app->arg(0))
                                 : nullptr;
    if (gen == nullptr || gen->num_params() < 2) {
      return Err("codegen: malformed Y");
    }
    const Application* ybody = gen->body();
    size_t n = gen->num_params() - 2;
    if (ybody->num_args() != n + 1 ||
        ybody->callee() != gen->param(gen->num_params() - 1)) {
      return Err("codegen: malformed Y body");
    }
    // First pass: declare bindings (blocks for conts, registers for procs).
    std::vector<uint16_t> proc_regs(n + 1, 0);
    for (size_t i = 1; i <= n; ++i) {
      const Variable* vi = gen->param(i);
      const Abstraction* absi = DynCast<Abstraction>(ybody->arg(i));
      if (absi == nullptr) return Err("codegen: Y binding not abstraction");
      if (vi->is_cont()) {
        if (!absi->is_cont()) return Err("codegen: Y sort mismatch");
        ContTarget t;
        t.kind = ContTarget::kBlock;
        t.label = NewLabel();
        for (size_t k = 0; k < absi->num_params(); ++k) {
          t.params.push_back(AllocReg());
        }
        pending_.push_back(PendingBlock{absi, t.label, t.params, false});
        cont_map_[vi] = t;
      } else {
        proc_regs[i] = AllocReg();
        TML_RETURN_NOT_OK(BindParam(vi, proc_regs[i]));
      }
    }
    // Second pass: create closures, then patch captures (the knot).
    for (size_t i = 1; i <= n; ++i) {
      const Variable* vi = gen->param(i);
      if (vi->is_cont()) continue;
      const Abstraction* absi = Cast<Abstraction>(ybody->arg(i));
      Function* sub = unit_->NewFunction();
      sub->name = fn_->name + "." + std::string(m_.NameOf(*vi));
      FnCompiler inner(unit_, m_, sub);
      TML_RETURN_NOT_OK(inner.Compile(absi));
      fn_->subfns.push_back(sub);
      Emit({Op::kClosure, proc_regs[i], 0,
            static_cast<uint16_t>(sub->cap_names.size()),
            static_cast<int32_t>(fn_->subfns.size()) - 1, -1});
    }
    for (size_t i = 1; i <= n; ++i) {
      const Variable* vi = gen->param(i);
      if (vi->is_cont()) continue;
      const Abstraction* absi = Cast<Abstraction>(ybody->arg(i));
      auto frees = ir::FreeVariables(absi);
      for (size_t k = 0; k < frees.size(); ++k) {
        TML_ASSIGN_OR_RETURN(uint16_t r, ValueReg(frees[k]));
        Emit({Op::kSetCap, proc_regs[i], static_cast<uint16_t>(k), r, 0, -1});
      }
    }
    // c0 is in scope inside the recursive bodies: give it a block too.
    const Abstraction* entry = DynCast<Abstraction>(ybody->arg(0));
    if (entry == nullptr || entry->num_params() != 0) {
      return Err("codegen: Y entry must be cont()");
    }
    ContTarget t0;
    t0.kind = ContTarget::kBlock;
    t0.label = NewLabel();
    pending_.push_back(PendingBlock{entry, t0.label, {}, false});
    cont_map_[gen->param(0)] = t0;
    EmitJump({Op::kJmp, 0, 0, 0, 0, -1}, t0.label);
    return Status::OK();
  }

  // (pushHandler h c)
  Status PushHandler(const Application* app) {
    if (app->num_args() != 2) return Err("codegen: pushHandler arity");
    TML_ASSIGN_OR_RETURN(int32_t fail, FailOf(app->arg(0)));
    if (fail < 0) return Err("codegen: pushHandler needs a local handler");
    Emit({Op::kPushH, 0, 0, 0, fail, -1});
    TML_ASSIGN_OR_RETURN(ContTarget t, ContOf(app->arg(1)));
    return ApplyCont(t, {});
  }

  // (popHandler c)
  Status PopHandler(const Application* app) {
    if (app->num_args() != 1) return Err("codegen: popHandler arity");
    Emit({Op::kPopH, 0, 0, 0, 0, -1});
    TML_ASSIGN_OR_RETURN(ContTarget t, ContOf(app->arg(0)));
    return ApplyCont(t, {});
  }

  // (raise v)
  Status RaiseOp(const Application* app) {
    if (app->num_args() != 1) return Err("codegen: raise arity");
    TML_ASSIGN_OR_RETURN(uint16_t r, ValueReg(app->arg(0)));
    Emit({Op::kRaise, r, 0, 0, 0, -1});
    return Status::OK();
  }

  // (ccall "name" a1..an ce cc)
  Status CCallOp(const Application* app) {
    if (app->num_args() < 3) return Err("codegen: ccall arity");
    const Literal* name = DynCast<Literal>(app->arg(0));
    if (name == nullptr || name->lit_kind() != LitKind::kString) {
      return Err("codegen: ccall needs a literal name");
    }
    size_t n = app->num_args() - 3;
    uint16_t base = next_reg_;
    for (size_t i = 0; i < n; ++i) AllocReg();
    for (size_t i = 0; i < n; ++i) {
      TML_ASSIGN_OR_RETURN(uint16_t r, ValueReg(app->arg(1 + i)));
      Emit({Op::kMove, static_cast<uint16_t>(base + i), r, 0, 0, -1});
    }
    TML_ASSIGN_OR_RETURN(int32_t fail,
                         FailOf(app->arg(app->num_args() - 2)));
    TML_ASSIGN_OR_RETURN(Dest d, DestOf(app->arg(app->num_args() - 1)));
    uint16_t name_idx =
        PoolConst(Constant::Str(std::string(name->string_value())));
    Emit({Op::kCCall, d.reg, base, name_idx, static_cast<int32_t>(n), fail});
    return Complete(d);
  }

  // (select pred rel ce cc) / (project fn rel ce cc) / (exists pred rel ..)
  Status Query2(Op op, const Application* app) {
    if (app->num_args() != 4) return Err("codegen: query arity");
    TML_ASSIGN_OR_RETURN(uint16_t rp, ValueReg(app->arg(0)));
    TML_ASSIGN_OR_RETURN(uint16_t rr, ValueReg(app->arg(1)));
    TML_ASSIGN_OR_RETURN(int32_t fail, FailOf(app->arg(2)));
    TML_ASSIGN_OR_RETURN(Dest d, DestOf(app->arg(3)));
    Emit({op, d.reg, rp, rr, 0, fail});
    return Complete(d);
  }

  // (join pred r1 r2 ce cc)
  Status JoinOp(const Application* app) {
    if (app->num_args() != 5) return Err("codegen: join arity");
    TML_ASSIGN_OR_RETURN(uint16_t rp, ValueReg(app->arg(0)));
    uint16_t base = next_reg_;
    AllocReg();
    AllocReg();
    TML_ASSIGN_OR_RETURN(uint16_t r1, ValueReg(app->arg(1)));
    Emit({Op::kMove, base, r1, 0, 0, -1});
    TML_ASSIGN_OR_RETURN(uint16_t r2, ValueReg(app->arg(2)));
    Emit({Op::kMove, static_cast<uint16_t>(base + 1), r2, 0, 0, -1});
    TML_ASSIGN_OR_RETURN(int32_t fail, FailOf(app->arg(3)));
    TML_ASSIGN_OR_RETURN(Dest d, DestOf(app->arg(4)));
    Emit({Op::kJoin, d.reg, rp, base, 0, fail});
    return Complete(d);
  }

  // (empty rel c) / (card rel c)
  Status QueryCard(Op op, const Application* app) {
    if (app->num_args() != 2) return Err("codegen: card arity");
    TML_ASSIGN_OR_RETURN(uint16_t rr, ValueReg(app->arg(0)));
    TML_ASSIGN_OR_RETURN(Dest d, DestOf(app->arg(1)));
    Emit({op, d.reg, rr, 0, 0, -1});
    return Complete(d);
  }

  // ---- pending blocks ------------------------------------------------------

  struct PendingBlock {
    const Abstraction* abs;  // nullptr for stubs
    int label;
    std::vector<uint16_t> params;
    bool ret_stub;
  };

  Status DrainPending() {
    while (!pending_.empty()) {
      PendingBlock blk = pending_.front();
      pending_.pop_front();
      Place(blk.label);
      if (blk.ret_stub) {
        Emit({Op::kRet, blk.params[0], 0, 0, 0, -1});
        continue;
      }
      if (blk.abs->num_params() != blk.params.size()) {
        return Err("codegen: block arity mismatch");
      }
      for (size_t i = 0; i < blk.params.size(); ++i) {
        TML_RETURN_NOT_OK(BindParam(blk.abs->param(i), blk.params[i]));
      }
      TML_RETURN_NOT_OK(CompileApp(blk.abs->body()));
    }
    return Status::OK();
  }

  Status Err(const std::string& msg) const {
    return Status::Invalid(msg + " (in " + fn_->name + ")");
  }

  CodeUnit* unit_;
  const ir::Module& m_;
  Function* fn_;
  std::unordered_map<const Variable*, uint16_t> var_reg_;
  std::unordered_map<const Variable*, ContTarget> cont_map_;
  std::vector<int32_t> labels_;
  std::vector<size_t> jump_fixups_;
  std::vector<size_t> fail_fixups_;
  std::deque<PendingBlock> pending_;
  uint16_t next_reg_ = 0;
};

}  // namespace

Result<Function*> CompileProc(CodeUnit* unit, const ir::Module& m,
                              const ir::Abstraction* proc, std::string name) {
  TML_TELEMETRY_SPAN("vm", "codegen");
  size_t funcs_before = unit->num_functions();
  Function* fn = unit->NewFunction();
  fn->name = std::move(name);
  FnCompiler compiler(unit, m, fn);
  TML_RETURN_NOT_OK(compiler.Compile(proc));
  if (fn->num_regs >= UINT16_MAX - 1) {
    return Status::Invalid("codegen: register file overflow in " + fn->name);
  }
  static telemetry::Counter* procs =
      telemetry::Registry::Global().GetCounter("tml.codegen.procs");
  static telemetry::Counter* functions =
      telemetry::Registry::Global().GetCounter("tml.codegen.functions");
  static telemetry::Counter* instrs =
      telemetry::Registry::Global().GetCounter("tml.codegen.instrs");
  procs->Increment();
  // Nested abstractions compile through NewFunction on the same unit, so
  // everything appended past funcs_before belongs to this proc.
  uint64_t emitted = 0;
  for (size_t i = funcs_before; i < unit->num_functions(); ++i) {
    emitted += unit->function(i)->code.size();
  }
  functions->Add(unit->num_functions() - funcs_before);
  instrs->Add(emitted);
  return fn;
}

}  // namespace tml::vm
