// TVM runtime values and heap.
//
// Values are 16-byte tagged scalars; aggregates (arrays, byte arrays,
// strings, closures) live on a mark-sweep heap owned by the VM.  Relations
// (§4.2) are represented as immutable arrays of immutable tuple-arrays, so
// the query primitives need no dedicated object kind; persistent relations
// enter the VM as OIDs and are swizzled by the runtime environment.

#ifndef TML_VM_VALUE_H_
#define TML_VM_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/oid.h"
#include "support/status.h"

namespace tml::vm {

class Function;
struct Obj;

enum class Tag : uint8_t {
  kNil,
  kBool,
  kInt,
  kChar,
  kReal,
  kOid,
  kObj,
};

struct Value {
  Tag tag = Tag::kNil;
  union {
    bool b;
    int64_t i;
    uint8_t ch;
    double r;
    Oid oid;
    Obj* obj;
  };

  Value() : i(0) {}

  static Value Nil() { return Value(); }
  static Value Bool(bool v) {
    Value x;
    x.tag = Tag::kBool;
    x.b = v;
    return x;
  }
  static Value Int(int64_t v) {
    Value x;
    x.tag = Tag::kInt;
    x.i = v;
    return x;
  }
  static Value Char(uint8_t v) {
    Value x;
    x.tag = Tag::kChar;
    x.ch = v;
    return x;
  }
  static Value Real(double v) {
    Value x;
    x.tag = Tag::kReal;
    x.r = v;
    return x;
  }
  static Value OidV(Oid v) {
    Value x;
    x.tag = Tag::kOid;
    x.oid = v;
    return x;
  }
  static Value ObjV(Obj* o) {
    Value x;
    x.tag = Tag::kObj;
    x.obj = o;
    return x;
  }

  bool is_nil() const { return tag == Tag::kNil; }
  bool is_int() const { return tag == Tag::kInt; }
  bool is_real() const { return tag == Tag::kReal; }
  bool is_bool() const { return tag == Tag::kBool; }
  bool is_obj() const { return tag == Tag::kObj; }
};

enum class ObjKind : uint8_t { kArray, kBytes, kString, kClosure };

struct Obj {
  ObjKind kind;
  bool marked = false;
  explicit Obj(ObjKind k) : kind(k) {}
  virtual ~Obj() = default;
};

struct ArrayObj final : Obj {
  ArrayObj() : Obj(ObjKind::kArray) {}
  std::vector<Value> slots;
  bool immutable = false;
};

struct BytesObj final : Obj {
  BytesObj() : Obj(ObjKind::kBytes) {}
  std::vector<uint8_t> bytes;
};

struct StringObj final : Obj {
  StringObj() : Obj(ObjKind::kString) {}
  std::string str;
};

struct ClosureObj final : Obj {
  ClosureObj() : Obj(ObjKind::kClosure) {}
  const Function* fn = nullptr;
  std::vector<Value> caps;
};

template <typename T>
T* As(const Value& v) {
  if (!v.is_obj()) return nullptr;
  return dynamic_cast<T*>(v.obj);
}

/// Mark-sweep heap.  Collection runs when allocated object count crosses a
/// growing threshold; the VM supplies roots (frames, handler values,
/// swizzle table) via the GC visitor in vm.cc.
///
/// Byte accounting (for VMOptions::heap_budget_bytes): New() charges the
/// object's base size, allocation sites charge payload bytes they size
/// (AccountBytes), and Sweep() recomputes the exact total from survivors —
/// so any growth the interpreter didn't account (query-output appends,
/// vector slack) is corrected at every collection, bounding drift to one
/// GC cycle.
class Heap {
 public:
  template <typename T>
  T* New() {
    auto owned = std::make_unique<T>();
    T* ptr = owned.get();
    bytes_ += sizeof(T) + kObjSlack;
    objects_.push_back(std::move(owned));
    return ptr;
  }

  size_t num_objects() const { return objects_.size(); }
  size_t gc_threshold() const { return gc_threshold_; }
  bool ShouldCollect() const { return objects_.size() >= gc_threshold_; }

  /// Approximate live bytes: exact as of the last Sweep, plus everything
  /// charged since (see class comment).
  uint64_t bytes_allocated() const { return bytes_; }
  /// Charge payload bytes at an allocation site that knows its size.
  void AccountBytes(uint64_t n) { bytes_ += n; }

  /// Approximate footprint of one object: base + payload capacity.
  static uint64_t ApproxBytes(const Obj* o) {
    switch (o->kind) {
      case ObjKind::kArray:
        return sizeof(ArrayObj) + kObjSlack +
               static_cast<const ArrayObj*>(o)->slots.capacity() *
                   sizeof(Value);
      case ObjKind::kBytes:
        return sizeof(BytesObj) + kObjSlack +
               static_cast<const BytesObj*>(o)->bytes.capacity();
      case ObjKind::kString:
        return sizeof(StringObj) + kObjSlack +
               static_cast<const StringObj*>(o)->str.capacity();
      case ObjKind::kClosure:
        return sizeof(ClosureObj) + kObjSlack +
               static_cast<const ClosureObj*>(o)->caps.capacity() *
                   sizeof(Value);
    }
    return kObjSlack;
  }

  /// Sweep unmarked objects; callers must have marked all roots.
  void Sweep() {
    size_t w = 0;
    uint64_t live_bytes = 0;
    for (size_t i = 0; i < objects_.size(); ++i) {
      if (objects_[i]->marked) {
        objects_[i]->marked = false;
        live_bytes += ApproxBytes(objects_[i].get());
        objects_[w++] = std::move(objects_[i]);
      }
    }
    objects_.resize(w);
    bytes_ = live_bytes;
    gc_threshold_ = std::max<size_t>(kMinThreshold, objects_.size() * 2);
  }

  /// Recursively mark an object graph.
  static void Mark(const Value& v) {
    if (!v.is_obj() || v.obj->marked) return;
    v.obj->marked = true;
    if (v.obj->kind == ObjKind::kArray) {
      for (const Value& s : static_cast<ArrayObj*>(v.obj)->slots) Mark(s);
    } else if (v.obj->kind == ObjKind::kClosure) {
      for (const Value& s : static_cast<ClosureObj*>(v.obj)->caps) Mark(s);
    }
  }

 private:
  static constexpr size_t kMinThreshold = 4096;
  /// Per-object bookkeeping overhead (unique_ptr slot, allocator headers).
  static constexpr size_t kObjSlack = 48;
  std::vector<std::unique_ptr<Obj>> objects_;
  size_t gc_threshold_ = kMinThreshold;
  uint64_t bytes_ = 0;
};

/// Render a value for tests and the "print" host function.
std::string ToString(const Value& v);

/// Structural scalar equality (the `==` identity test on literals).
bool ScalarEquals(const Value& a, const Value& b);

}  // namespace tml::vm

#endif  // TML_VM_VALUE_H_
