#include "vm/fuse.h"

#include <unordered_map>

namespace tml::vm {

namespace {

// Pattern tables generated from ops.def.  Keys pack the constituent base
// opcodes: (a<<8)|b for pairs, (a<<16)|(b<<8)|c for triples.
uint32_t PairKey(Op a, Op b) {
  return (static_cast<uint32_t>(a) << 8) | static_cast<uint32_t>(b);
}
uint32_t TripleKey(Op a, Op b, Op c) {
  return (static_cast<uint32_t>(a) << 16) |
         (static_cast<uint32_t>(b) << 8) | static_cast<uint32_t>(c);
}

const std::unordered_map<uint32_t, Op>& PairTable() {
  static const std::unordered_map<uint32_t, Op> table = {
#define TML_FUSED2(name, mnemonic, firstOp, secondOp) \
  {PairKey(Op::firstOp, Op::secondOp), Op::name},
#include "vm/ops.def"
  };
  return table;
}

const std::unordered_map<uint32_t, Op>& TripleTable() {
  static const std::unordered_map<uint32_t, Op> table = {
#define TML_FUSED3(name, mnemonic, firstOp, secondOp, thirdOp) \
  {TripleKey(Op::firstOp, Op::secondOp, Op::thirdOp), Op::name},
#include "vm/ops.def"
  };
  return table;
}

FuseStats FuseOne(Function* fn) {
  FuseStats stats;
  const auto& pairs = PairTable();
  const auto& triples = TripleTable();
  std::vector<Instr>& code = fn->code;
  size_t i = 0;
  while (i < code.size()) {
    // Never look *through* an existing superinstruction: its trailing
    // slots are live operands of the fused handler.
    if (IsFusedOp(code[i].op)) {
      i += static_cast<size_t>(OpWidth(code[i].op));
      continue;
    }
    if (i + 2 < code.size() && !IsFusedOp(code[i + 1].op) &&
        !IsFusedOp(code[i + 2].op)) {
      auto it = triples.find(
          TripleKey(code[i].op, code[i + 1].op, code[i + 2].op));
      if (it != triples.end()) {
        code[i].op = it->second;
        ++stats.triples_fused;
        i += 3;
        continue;
      }
    }
    if (i + 1 < code.size() && !IsFusedOp(code[i + 1].op)) {
      auto it = pairs.find(PairKey(code[i].op, code[i + 1].op));
      if (it != pairs.end()) {
        code[i].op = it->second;
        ++stats.pairs_fused;
        i += 2;
        continue;
      }
    }
    ++i;
  }
  if (stats.pairs_fused + stats.triples_fused > 0) stats.functions_touched = 1;
  return stats;
}

}  // namespace

FuseStats FuseSuperinstructions(Function* fn) {
  FuseStats stats = FuseOne(fn);
  for (const Function* sub : fn->subfns) {
    // Subfunction trees are freshly built (or deserialized) per code unit
    // and uniquely owned; the const in `subfns` guards the interpreter,
    // not this backend pass.
    FuseStats s = FuseSuperinstructions(const_cast<Function*>(sub));
    stats.pairs_fused += s.pairs_fused;
    stats.triples_fused += s.triples_fused;
    stats.functions_touched += s.functions_touched;
  }
  return stats;
}

bool ContainsFusedOps(const Function& fn) {
  for (const Instr& in : fn.code) {
    if (IsFusedOp(in.op)) return true;
  }
  return false;
}

}  // namespace tml::vm
