// TVM bytecode: instruction set, functions, code units, serialization.
//
// The code generator (codegen.h) compiles TML to this register machine,
// exploiting the §2.2 guarantee that continuations are second class:
// continuation abstractions become basic blocks, `(cc v)` becomes RET,
// `(ce v)` becomes RAISE, and calls whose normal continuation is the
// caller's own cc become tail calls.

#ifndef TML_VM_CODE_H_
#define TML_VM_CODE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/oid.h"
#include "support/status.h"

namespace tml::vm {

// The opcode set is generated from the single-source X-macro table in
// ops.def (base ops first, then superinstructions); per-op semantics are
// documented there.  Serialization persists the raw enum byte, so the base
// block's order is frozen — see the ORDER CONTRACT in ops.def.
enum class Op : uint8_t {
#define TML_OP(name, mnemonic, shape) name,
#define TML_FUSED2(name, mnemonic, firstOp, secondOp) name,
#define TML_FUSED3(name, mnemonic, firstOp, secondOp, thirdOp) name,
#include "vm/ops.def"
};

/// Number of base (single-step) opcodes; fused opcodes follow contiguously.
inline constexpr uint8_t kNumBaseOps = 0
#define TML_OP(name, mnemonic, shape) +1
#include "vm/ops.def"
    ;

/// Total opcode count (base + fused) — the bound checked by decode and the
/// size every generated table must match.
inline constexpr uint8_t kNumOps = 0
#define TML_OP(name, mnemonic, shape) +1
#define TML_FUSED2(name, mnemonic, firstOp, secondOp) +1
#define TML_FUSED3(name, mnemonic, firstOp, secondOp, thirdOp) +1
#include "vm/ops.def"
    ;

// The base block must still end at kCount: store records serialized before
// the superinstruction tier carry base opcode bytes only, and those bytes
// are meaningful forever.
static_assert(static_cast<uint8_t>(Op::kCount) == kNumBaseOps - 1,
              "base opcode block reordered or extended past kCount; "
              "persisted code records would change meaning");
static_assert(kNumOps > kNumBaseOps, "ops.def lost its fused entries");

/// True for superinstructions (the fused execution tier).
constexpr bool IsFusedOp(Op op) {
  return static_cast<uint8_t>(op) >= kNumBaseOps;
}

const char* OpName(Op op);
/// Operand fields the op uses, as a subset of "abcd" (disassembly shape).
/// Fused ops report the shape of their first constituent op — the fused
/// slot keeps that op's operands.
const char* OpShape(Op op);
/// Logical instruction slots the op covers: 1 for base ops, 2/3 for fused
/// pairs/triples (the trailing slots keep their original instructions).
int OpWidth(Op op);

/// One instruction.  `d` is a signed payload: jump target, pool index,
/// subfunction index, argument count or fail-info index depending on op;
/// `d2` carries a second payload for the rare ops needing both (kCCall,
/// and fallible call-free ops keep fail info in `fail`).
struct Instr {
  Op op;
  uint16_t a = 0;
  uint16_t b = 0;
  uint16_t c = 0;
  int32_t d = 0;
  int32_t fail = -1;  ///< fail-info index; -1 = unwind via handler stack
};

/// Scalar constants (heap-free) for the pool.
struct Constant {
  enum class Kind : uint8_t { kNil, kBool, kInt, kChar, kReal, kString, kOid };
  Kind kind = Kind::kNil;
  int64_t i = 0;
  double r = 0;
  std::string s;

  static Constant Nil() { return {}; }
  static Constant Bool(bool b) {
    Constant c;
    c.kind = Kind::kBool;
    c.i = b;
    return c;
  }
  static Constant Int(int64_t v) {
    Constant c;
    c.kind = Kind::kInt;
    c.i = v;
    return c;
  }
  static Constant Char(uint8_t v) {
    Constant c;
    c.kind = Kind::kChar;
    c.i = v;
    return c;
  }
  static Constant Real(double v) {
    Constant c;
    c.kind = Kind::kReal;
    c.r = v;
    return c;
  }
  static Constant Str(std::string v) {
    Constant c;
    c.kind = Kind::kString;
    c.s = std::move(v);
    return c;
  }
  static Constant OidC(Oid v) {
    Constant c;
    c.kind = Kind::kOid;
    c.i = static_cast<int64_t>(v);
    return c;
  }
  bool operator==(const Constant& o) const {
    return kind == o.kind && i == o.i && r == o.r && s == o.s;
  }
};

/// Where a fault transfers control: a pc within the same function plus the
/// register receiving the exception value.
struct FailInfo {
  int32_t target = 0;
  uint16_t exn_reg = 0;
};

class CodeUnit;

/// A compiled TML procedure.
class Function {
 public:
  std::string name;
  uint32_t num_params = 0;  ///< value parameters, in regs [0, num_params)
  uint32_t num_regs = 0;
  std::vector<Instr> code;
  std::vector<Constant> pool;
  std::vector<FailInfo> fail_infos;
  /// Functions created by kClosure (index space of Instr::d).
  std::vector<const Function*> subfns;
  /// Capture-variable names, parallel to closure caps: the R-value binding
  /// identifiers of §4.1.
  std::vector<std::string> cap_names;
  /// OID of this function's PTML record, 0 if none attached.
  Oid ptml_oid = kNullOid;

  /// Bytecode footprint in bytes (code + pool), for the E2 accounting.
  size_t ByteSize() const;
  /// Human-readable disassembly.
  std::string Disassemble() const;
};

/// Owns a set of functions produced by one compilation.
class CodeUnit {
 public:
  Function* NewFunction() {
    fns_.emplace_back(std::make_unique<Function>());
    return fns_.back().get();
  }
  size_t num_functions() const { return fns_.size(); }
  const Function* function(size_t i) const { return fns_[i].get(); }
  size_t TotalByteSize() const {
    size_t n = 0;
    for (const auto& f : fns_) n += f->ByteSize();
    return n;
  }

 private:
  std::vector<std::unique_ptr<Function>> fns_;
};

/// Serialize a function together with its nested subfunctions (a code
/// record in the object store is self-contained).
std::string SerializeFunction(const Function& fn);
Result<Function*> DeserializeFunction(CodeUnit* unit, std::string_view bytes);

}  // namespace tml::vm

#endif  // TML_VM_CODE_H_
