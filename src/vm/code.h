// TVM bytecode: instruction set, functions, code units, serialization.
//
// The code generator (codegen.h) compiles TML to this register machine,
// exploiting the §2.2 guarantee that continuations are second class:
// continuation abstractions become basic blocks, `(cc v)` becomes RET,
// `(ce v)` becomes RAISE, and calls whose normal continuation is the
// caller's own cc become tail calls.

#ifndef TML_VM_CODE_H_
#define TML_VM_CODE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/oid.h"
#include "support/status.h"

namespace tml::vm {

enum class Op : uint8_t {
  kLoadK,     // regs[a] = pool[d]
  kMove,      // regs[a] = regs[b]
  // Integer arithmetic; d = fail-info index or -1 (unwind on fault).
  kAddI,      // regs[a] = regs[b] + regs[c]
  kSubI,
  kMulI,
  kDivI,
  kModI,
  // Bit operations (cannot fault).
  kShl,
  kShr,
  kBitAnd,
  kBitOr,
  kBitXor,
  // Real arithmetic.
  kAddR,
  kSubR,
  kMulR,
  kDivR,      // d = fail info (division by zero)
  kSqrt,      // regs[a] = sqrt(regs[b]); d = fail info
  kI2R,
  kR2I,       // d = fail info (range)
  kC2I,
  kI2C,
  kAndB,
  kOrB,
  kNotB,
  // Branches: jump to d when the comparison holds, else fall through.
  kBrLtI,
  kBrLeI,
  kBrLtR,
  kBrLeR,
  kBrEq,      // scalar identity regs[b] == regs[c]
  kCaseEq,    // scalar identity regs[b] == pool[c]; jump d on match
  kJmp,       // pc = d
  // Aggregates; d = fail info where faults are possible.
  kNewArray,  // regs[a] = array of regs[b..b+c)
  kNewVector,
  kNewArrN,   // regs[a] = array of size regs[b], init regs[c]; fail on n<0
  kNewBytes,  // regs[a] = byte array, size regs[b], init regs[c]
  kALoad,     // regs[a] = regs[b][regs[c]]
  kAStore,    // regs[a][regs[b]] = regs[c]
  kBLoad,
  kBStore,
  kSize,      // regs[a] = size(regs[b])
  kMoveN,     // array copy; a = base of 5 regs (dst doff src soff n)
  kBMoveN,
  // Closures.
  kClosure,   // regs[a] = closure over subfns[d] with c uninitialized caps
  kSetCap,    // closure regs[a], cap index b, value regs[c]
  kGetCap,    // regs[a] = current closure's cap b
  // Calls.
  kCall,      // regs[a] = call regs[b] with args regs[c..c+d)
  kTailCall,  // tail call regs[b] with args regs[c..c+d)
  kRet,       // return regs[a]
  // Exceptions.
  kRaise,     // raise regs[a]
  kPushH,     // push handler (fail info d) onto the handler stack
  kPopH,
  // Host call-out: regs[a] = host[pool[c]](regs[b..b+?]); count in d's
  // fail-info-free upper half — see Instr::d2.
  kCCall,     // regs[a] = host fn pool[c] applied to regs[b..b+d2)
  // Query primitives (§4.2); relations are arrays of tuple-arrays or OIDs.
  kSelect,    // regs[a] = filter(regs[b] = pred, regs[c] = rel)
  kProject,   // regs[a] = map(regs[b], regs[c])
  kJoin,      // regs[a] = join(pred regs[b], rels regs[c], regs[c+1])
  kExists,    // regs[a] = bool: any tuple of regs[c] satisfies regs[b]
  kEmpty,     // regs[a] = (|regs[b]| == 0)
  kCount,     // regs[a] = |regs[b]|
};

const char* OpName(Op op);

/// One instruction.  `d` is a signed payload: jump target, pool index,
/// subfunction index, argument count or fail-info index depending on op;
/// `d2` carries a second payload for the rare ops needing both (kCCall,
/// and fallible call-free ops keep fail info in `fail`).
struct Instr {
  Op op;
  uint16_t a = 0;
  uint16_t b = 0;
  uint16_t c = 0;
  int32_t d = 0;
  int32_t fail = -1;  ///< fail-info index; -1 = unwind via handler stack
};

/// Scalar constants (heap-free) for the pool.
struct Constant {
  enum class Kind : uint8_t { kNil, kBool, kInt, kChar, kReal, kString, kOid };
  Kind kind = Kind::kNil;
  int64_t i = 0;
  double r = 0;
  std::string s;

  static Constant Nil() { return {}; }
  static Constant Bool(bool b) {
    Constant c;
    c.kind = Kind::kBool;
    c.i = b;
    return c;
  }
  static Constant Int(int64_t v) {
    Constant c;
    c.kind = Kind::kInt;
    c.i = v;
    return c;
  }
  static Constant Char(uint8_t v) {
    Constant c;
    c.kind = Kind::kChar;
    c.i = v;
    return c;
  }
  static Constant Real(double v) {
    Constant c;
    c.kind = Kind::kReal;
    c.r = v;
    return c;
  }
  static Constant Str(std::string v) {
    Constant c;
    c.kind = Kind::kString;
    c.s = std::move(v);
    return c;
  }
  static Constant OidC(Oid v) {
    Constant c;
    c.kind = Kind::kOid;
    c.i = static_cast<int64_t>(v);
    return c;
  }
  bool operator==(const Constant& o) const {
    return kind == o.kind && i == o.i && r == o.r && s == o.s;
  }
};

/// Where a fault transfers control: a pc within the same function plus the
/// register receiving the exception value.
struct FailInfo {
  int32_t target = 0;
  uint16_t exn_reg = 0;
};

class CodeUnit;

/// A compiled TML procedure.
class Function {
 public:
  std::string name;
  uint32_t num_params = 0;  ///< value parameters, in regs [0, num_params)
  uint32_t num_regs = 0;
  std::vector<Instr> code;
  std::vector<Constant> pool;
  std::vector<FailInfo> fail_infos;
  /// Functions created by kClosure (index space of Instr::d).
  std::vector<const Function*> subfns;
  /// Capture-variable names, parallel to closure caps: the R-value binding
  /// identifiers of §4.1.
  std::vector<std::string> cap_names;
  /// OID of this function's PTML record, 0 if none attached.
  Oid ptml_oid = kNullOid;

  /// Bytecode footprint in bytes (code + pool), for the E2 accounting.
  size_t ByteSize() const;
  /// Human-readable disassembly.
  std::string Disassemble() const;
};

/// Owns a set of functions produced by one compilation.
class CodeUnit {
 public:
  Function* NewFunction() {
    fns_.emplace_back(std::make_unique<Function>());
    return fns_.back().get();
  }
  size_t num_functions() const { return fns_.size(); }
  const Function* function(size_t i) const { return fns_[i].get(); }
  size_t TotalByteSize() const {
    size_t n = 0;
    for (const auto& f : fns_) n += f->ByteSize();
    return n;
  }

 private:
  std::vector<std::unique_ptr<Function>> fns_;
};

/// Serialize a function together with its nested subfunctions (a code
/// record in the object store is self-contained).
std::string SerializeFunction(const Function& fn);
Result<Function*> DeserializeFunction(CodeUnit* unit, std::string_view bytes);

}  // namespace tml::vm

#endif  // TML_VM_CODE_H_
