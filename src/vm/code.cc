#include "vm/code.h"

#include <cstring>

#include "support/varint.h"

namespace tml::vm {

const char* OpName(Op op) {
  switch (op) {
    case Op::kLoadK: return "loadk";
    case Op::kMove: return "move";
    case Op::kAddI: return "addi";
    case Op::kSubI: return "subi";
    case Op::kMulI: return "muli";
    case Op::kDivI: return "divi";
    case Op::kModI: return "modi";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kBitAnd: return "band";
    case Op::kBitOr: return "bor";
    case Op::kBitXor: return "bxor";
    case Op::kAddR: return "addr";
    case Op::kSubR: return "subr";
    case Op::kMulR: return "mulr";
    case Op::kDivR: return "divr";
    case Op::kSqrt: return "sqrt";
    case Op::kI2R: return "i2r";
    case Op::kR2I: return "r2i";
    case Op::kC2I: return "c2i";
    case Op::kI2C: return "i2c";
    case Op::kAndB: return "andb";
    case Op::kOrB: return "orb";
    case Op::kNotB: return "notb";
    case Op::kBrLtI: return "brlti";
    case Op::kBrLeI: return "brlei";
    case Op::kBrLtR: return "brltr";
    case Op::kBrLeR: return "brler";
    case Op::kBrEq: return "breq";
    case Op::kCaseEq: return "caseeq";
    case Op::kJmp: return "jmp";
    case Op::kNewArray: return "newarr";
    case Op::kNewVector: return "newvec";
    case Op::kNewArrN: return "newarrn";
    case Op::kNewBytes: return "newbytes";
    case Op::kALoad: return "aload";
    case Op::kAStore: return "astore";
    case Op::kBLoad: return "bload";
    case Op::kBStore: return "bstore";
    case Op::kSize: return "size";
    case Op::kMoveN: return "moven";
    case Op::kBMoveN: return "bmoven";
    case Op::kClosure: return "closure";
    case Op::kSetCap: return "setcap";
    case Op::kGetCap: return "getcap";
    case Op::kCall: return "call";
    case Op::kTailCall: return "tailcall";
    case Op::kRet: return "ret";
    case Op::kRaise: return "raise";
    case Op::kPushH: return "pushh";
    case Op::kPopH: return "poph";
    case Op::kCCall: return "ccall";
    case Op::kSelect: return "select";
    case Op::kProject: return "project";
    case Op::kJoin: return "join";
    case Op::kExists: return "exists";
    case Op::kEmpty: return "empty";
    case Op::kCount: return "count";
  }
  return "?";
}

size_t Function::ByteSize() const {
  size_t n = code.size() * sizeof(Instr);
  for (const Constant& c : pool) n += 16 + c.s.size();
  n += fail_infos.size() * sizeof(FailInfo);
  return n;
}

std::string Function::Disassemble() const {
  std::string out = name + " (params=" + std::to_string(num_params) +
                    " regs=" + std::to_string(num_regs) + ")\n";
  for (size_t i = 0; i < code.size(); ++i) {
    const Instr& in = code[i];
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  %4zu  %-9s a=%u b=%u c=%u d=%d%s\n",
                  i, OpName(in.op), in.a, in.b, in.c, in.d,
                  in.fail >= 0 ? (" !" + std::to_string(in.fail)).c_str()
                               : "");
    out += buf;
  }
  return out;
}

namespace {

void PutConstant(std::string* out, const Constant& c) {
  out->push_back(static_cast<char>(c.kind));
  switch (c.kind) {
    case Constant::Kind::kNil:
      break;
    case Constant::Kind::kBool:
    case Constant::Kind::kInt:
    case Constant::Kind::kChar:
    case Constant::Kind::kOid:
      PutVarintSigned(out, c.i);
      break;
    case Constant::Kind::kReal: {
      char buf[8];
      std::memcpy(buf, &c.r, 8);
      out->append(buf, 8);
      break;
    }
    case Constant::Kind::kString:
      PutVarint(out, c.s.size());
      out->append(c.s);
      break;
  }
}

Result<Constant> ReadConstant(VarintReader* r) {
  TML_ASSIGN_OR_RETURN(std::string kind_b, r->ReadBytes(1));
  Constant c;
  c.kind = static_cast<Constant::Kind>(kind_b[0]);
  switch (c.kind) {
    case Constant::Kind::kNil:
      break;
    case Constant::Kind::kBool:
    case Constant::Kind::kInt:
    case Constant::Kind::kChar:
    case Constant::Kind::kOid: {
      TML_ASSIGN_OR_RETURN(c.i, r->ReadVarintSigned());
      break;
    }
    case Constant::Kind::kReal: {
      TML_ASSIGN_OR_RETURN(std::string b, r->ReadBytes(8));
      std::memcpy(&c.r, b.data(), 8);
      break;
    }
    case Constant::Kind::kString: {
      TML_ASSIGN_OR_RETURN(uint64_t len, r->ReadVarint());
      TML_ASSIGN_OR_RETURN(c.s, r->ReadBytes(len));
      break;
    }
    default:
      return Status::Corruption("code: bad constant kind");
  }
  return c;
}

}  // namespace

std::string SerializeFunction(const Function& fn) {
  std::string out = "TVMC1";
  PutVarint(&out, fn.name.size());
  out.append(fn.name);
  PutVarint(&out, fn.num_params);
  PutVarint(&out, fn.num_regs);
  PutVarint(&out, fn.pool.size());
  for (const Constant& c : fn.pool) PutConstant(&out, c);
  PutVarint(&out, fn.fail_infos.size());
  for (const FailInfo& f : fn.fail_infos) {
    PutVarintSigned(&out, f.target);
    PutVarint(&out, f.exn_reg);
  }
  PutVarint(&out, fn.cap_names.size());
  for (const std::string& s : fn.cap_names) {
    PutVarint(&out, s.size());
    out.append(s);
  }
  PutVarint(&out, fn.ptml_oid);
  PutVarint(&out, fn.code.size());
  for (const Instr& in : fn.code) {
    out.push_back(static_cast<char>(in.op));
    PutVarint(&out, in.a);
    PutVarint(&out, in.b);
    PutVarint(&out, in.c);
    PutVarintSigned(&out, in.d);
    PutVarintSigned(&out, in.fail);
  }
  // Subfunctions are serialized inline so a code record is self-contained.
  PutVarint(&out, fn.subfns.size());
  for (const Function* sub : fn.subfns) {
    std::string inner = SerializeFunction(*sub);
    PutVarint(&out, inner.size());
    out.append(inner);
  }
  return out;
}

namespace {

// Depth bound for nested subfunction payloads: compiled code nests a few
// levels at most, while a crafted record could otherwise recurse until the
// C++ stack overflows.
constexpr int kMaxSubfnDepth = 64;

Result<Function*> DeserializeFunctionImpl(CodeUnit* unit,
                                          std::string_view bytes,
                                          int depth) {
  if (depth > kMaxSubfnDepth) {
    return Status::Corruption("code: subfunction nesting too deep");
  }
  VarintReader r(bytes.data(), bytes.size());
  TML_ASSIGN_OR_RETURN(std::string magic, r.ReadBytes(5));
  if (magic != "TVMC1") return Status::Corruption("code: bad magic");
  Function* fn = unit->NewFunction();
  TML_ASSIGN_OR_RETURN(uint64_t nlen, r.ReadVarint());
  TML_ASSIGN_OR_RETURN(fn->name, r.ReadBytes(nlen));
  TML_ASSIGN_OR_RETURN(uint64_t nparams, r.ReadVarint());
  fn->num_params = static_cast<uint32_t>(nparams);
  TML_ASSIGN_OR_RETURN(uint64_t nregs, r.ReadVarint());
  fn->num_regs = static_cast<uint32_t>(nregs);
  TML_ASSIGN_OR_RETURN(uint64_t npool, r.ReadVarint());
  // Element counts are bounded by the remaining input (every element
  // consumes at least one byte) before any allocation is sized from them.
  if (npool > r.Remaining()) {
    return Status::Corruption("code: pool count exceeds input");
  }
  fn->pool.reserve(npool);
  for (uint64_t i = 0; i < npool; ++i) {
    TML_ASSIGN_OR_RETURN(Constant c, ReadConstant(&r));
    fn->pool.push_back(std::move(c));
  }
  TML_ASSIGN_OR_RETURN(uint64_t nfail, r.ReadVarint());
  if (nfail > r.Remaining() / 2) {
    return Status::Corruption("code: fail-info count exceeds input");
  }
  fn->fail_infos.reserve(nfail);
  for (uint64_t i = 0; i < nfail; ++i) {
    FailInfo f;
    TML_ASSIGN_OR_RETURN(int64_t target, r.ReadVarintSigned());
    f.target = static_cast<int32_t>(target);
    TML_ASSIGN_OR_RETURN(uint64_t reg, r.ReadVarint());
    f.exn_reg = static_cast<uint16_t>(reg);
    fn->fail_infos.push_back(f);
  }
  TML_ASSIGN_OR_RETURN(uint64_t ncaps, r.ReadVarint());
  if (ncaps > r.Remaining()) {
    return Status::Corruption("code: capture count exceeds input");
  }
  fn->cap_names.reserve(ncaps);
  for (uint64_t i = 0; i < ncaps; ++i) {
    TML_ASSIGN_OR_RETURN(uint64_t slen, r.ReadVarint());
    TML_ASSIGN_OR_RETURN(std::string s, r.ReadBytes(slen));
    fn->cap_names.push_back(std::move(s));
  }
  TML_ASSIGN_OR_RETURN(fn->ptml_oid, r.ReadVarint());
  TML_ASSIGN_OR_RETURN(uint64_t ncode, r.ReadVarint());
  // An instruction is an op byte plus five varints.
  if (ncode > r.Remaining() / 6) {
    return Status::Corruption("code: instruction count exceeds input");
  }
  fn->code.reserve(ncode);
  for (uint64_t i = 0; i < ncode; ++i) {
    Instr in;
    TML_ASSIGN_OR_RETURN(std::string op_b, r.ReadBytes(1));
    uint8_t op_raw = static_cast<uint8_t>(op_b[0]);
    if (op_raw > static_cast<uint8_t>(Op::kCount)) {
      return Status::Corruption("code: unknown opcode " +
                                std::to_string(op_raw));
    }
    in.op = static_cast<Op>(op_raw);
    TML_ASSIGN_OR_RETURN(uint64_t a, r.ReadVarint());
    TML_ASSIGN_OR_RETURN(uint64_t b, r.ReadVarint());
    TML_ASSIGN_OR_RETURN(uint64_t c, r.ReadVarint());
    TML_ASSIGN_OR_RETURN(int64_t d, r.ReadVarintSigned());
    TML_ASSIGN_OR_RETURN(int64_t fail, r.ReadVarintSigned());
    in.a = static_cast<uint16_t>(a);
    in.b = static_cast<uint16_t>(b);
    in.c = static_cast<uint16_t>(c);
    in.d = static_cast<int32_t>(d);
    in.fail = static_cast<int32_t>(fail);
    fn->code.push_back(in);
  }
  TML_ASSIGN_OR_RETURN(uint64_t nsub, r.ReadVarint());
  if (nsub > r.Remaining()) {
    return Status::Corruption("code: subfunction count exceeds input");
  }
  fn->subfns.reserve(nsub);
  for (uint64_t i = 0; i < nsub; ++i) {
    TML_ASSIGN_OR_RETURN(uint64_t ilen, r.ReadVarint());
    TML_ASSIGN_OR_RETURN(std::string inner, r.ReadBytes(ilen));
    TML_ASSIGN_OR_RETURN(Function * sub,
                         DeserializeFunctionImpl(unit, inner, depth + 1));
    fn->subfns.push_back(sub);
  }
  return fn;
}

}  // namespace

Result<Function*> DeserializeFunction(CodeUnit* unit, std::string_view bytes) {
  return DeserializeFunctionImpl(unit, bytes, 0);
}

}  // namespace tml::vm
