#include "vm/code.h"

#include <cstring>
#include <iterator>

#include "support/varint.h"

namespace tml::vm {

namespace {

// All opcode metadata regenerates from ops.def; the static_asserts below
// are the satellite guarantee that enum, decode bound and every table
// agree on the opcode count.
constexpr const char* kOpNames[] = {
#define TML_OP(name, mnemonic, shape) mnemonic,
#define TML_FUSED2(name, mnemonic, firstOp, secondOp) mnemonic,
#define TML_FUSED3(name, mnemonic, firstOp, secondOp, thirdOp) mnemonic,
#include "vm/ops.def"
};

// Operand shapes for base ops; fused ops borrow their first op's shape via
// kFusedFirstOp (the fused slot keeps the first op's operands).
constexpr const char* kOpShapes[] = {
#define TML_OP(name, mnemonic, shape) shape,
#include "vm/ops.def"
};

constexpr uint8_t kOpWidths[] = {
#define TML_OP(name, mnemonic, shape) 1,
#define TML_FUSED2(name, mnemonic, firstOp, secondOp) 2,
#define TML_FUSED3(name, mnemonic, firstOp, secondOp, thirdOp) 3,
#include "vm/ops.def"
};

// First constituent op of each fused op, indexed by (op - kNumBaseOps).
constexpr Op kFusedFirstOp[] = {
#define TML_OP(name, mnemonic, shape)
#define TML_FUSED2(name, mnemonic, firstOp, secondOp) Op::firstOp,
#define TML_FUSED3(name, mnemonic, firstOp, secondOp, thirdOp) Op::firstOp,
#include "vm/ops.def"
};

static_assert(std::size(kOpNames) == kNumOps,
              "mnemonic table out of sync with the Op enum");
static_assert(std::size(kOpShapes) == kNumBaseOps,
              "shape table out of sync with the base opcode block");
static_assert(std::size(kOpWidths) == kNumOps,
              "width table out of sync with the Op enum");
static_assert(std::size(kFusedFirstOp) == kNumOps - kNumBaseOps,
              "fused-op table out of sync with the Op enum");

}  // namespace

const char* OpName(Op op) {
  uint8_t i = static_cast<uint8_t>(op);
  return i < kNumOps ? kOpNames[i] : "?";
}

const char* OpShape(Op op) {
  uint8_t i = static_cast<uint8_t>(op);
  if (i >= kNumOps) return "abcd";
  if (i >= kNumBaseOps) {
    i = static_cast<uint8_t>(kFusedFirstOp[i - kNumBaseOps]);
  }
  return kOpShapes[i];
}

int OpWidth(Op op) {
  uint8_t i = static_cast<uint8_t>(op);
  return i < kNumOps ? kOpWidths[i] : 1;
}

size_t Function::ByteSize() const {
  size_t n = code.size() * sizeof(Instr);
  for (const Constant& c : pool) n += 16 + c.s.size();
  n += fail_infos.size() * sizeof(FailInfo);
  return n;
}

std::string Function::Disassemble() const {
  std::string out = name + " (params=" + std::to_string(num_params) +
                    " regs=" + std::to_string(num_regs) + ")\n";
  for (size_t i = 0; i < code.size(); ++i) {
    const Instr& in = code[i];
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  %4zu  %-18s", i, OpName(in.op));
    out += buf;
    // Print only the operand fields this op actually uses (ops.def shape).
    for (const char* s = OpShape(in.op); *s != '\0'; ++s) {
      switch (*s) {
        case 'a': std::snprintf(buf, sizeof(buf), " a=%u", in.a); break;
        case 'b': std::snprintf(buf, sizeof(buf), " b=%u", in.b); break;
        case 'c': std::snprintf(buf, sizeof(buf), " c=%u", in.c); break;
        default: std::snprintf(buf, sizeof(buf), " d=%d", in.d); break;
      }
      out += buf;
    }
    if (in.fail >= 0) out += " !" + std::to_string(in.fail);
    out += '\n';
  }
  return out;
}

namespace {

void PutConstant(std::string* out, const Constant& c) {
  out->push_back(static_cast<char>(c.kind));
  switch (c.kind) {
    case Constant::Kind::kNil:
      break;
    case Constant::Kind::kBool:
    case Constant::Kind::kInt:
    case Constant::Kind::kChar:
    case Constant::Kind::kOid:
      PutVarintSigned(out, c.i);
      break;
    case Constant::Kind::kReal: {
      char buf[8];
      std::memcpy(buf, &c.r, 8);
      out->append(buf, 8);
      break;
    }
    case Constant::Kind::kString:
      PutVarint(out, c.s.size());
      out->append(c.s);
      break;
  }
}

Result<Constant> ReadConstant(VarintReader* r) {
  TML_ASSIGN_OR_RETURN(std::string kind_b, r->ReadBytes(1));
  Constant c;
  c.kind = static_cast<Constant::Kind>(kind_b[0]);
  switch (c.kind) {
    case Constant::Kind::kNil:
      break;
    case Constant::Kind::kBool:
    case Constant::Kind::kInt:
    case Constant::Kind::kChar:
    case Constant::Kind::kOid: {
      TML_ASSIGN_OR_RETURN(c.i, r->ReadVarintSigned());
      break;
    }
    case Constant::Kind::kReal: {
      TML_ASSIGN_OR_RETURN(std::string b, r->ReadBytes(8));
      std::memcpy(&c.r, b.data(), 8);
      break;
    }
    case Constant::Kind::kString: {
      TML_ASSIGN_OR_RETURN(uint64_t len, r->ReadVarint());
      TML_ASSIGN_OR_RETURN(c.s, r->ReadBytes(len));
      break;
    }
    default:
      return Status::Corruption("code: bad constant kind");
  }
  return c;
}

}  // namespace

std::string SerializeFunction(const Function& fn) {
  std::string out = "TVMC1";
  PutVarint(&out, fn.name.size());
  out.append(fn.name);
  PutVarint(&out, fn.num_params);
  PutVarint(&out, fn.num_regs);
  PutVarint(&out, fn.pool.size());
  for (const Constant& c : fn.pool) PutConstant(&out, c);
  PutVarint(&out, fn.fail_infos.size());
  for (const FailInfo& f : fn.fail_infos) {
    PutVarintSigned(&out, f.target);
    PutVarint(&out, f.exn_reg);
  }
  PutVarint(&out, fn.cap_names.size());
  for (const std::string& s : fn.cap_names) {
    PutVarint(&out, s.size());
    out.append(s);
  }
  PutVarint(&out, fn.ptml_oid);
  PutVarint(&out, fn.code.size());
  for (const Instr& in : fn.code) {
    out.push_back(static_cast<char>(in.op));
    PutVarint(&out, in.a);
    PutVarint(&out, in.b);
    PutVarint(&out, in.c);
    PutVarintSigned(&out, in.d);
    PutVarintSigned(&out, in.fail);
  }
  // Subfunctions are serialized inline so a code record is self-contained.
  PutVarint(&out, fn.subfns.size());
  for (const Function* sub : fn.subfns) {
    std::string inner = SerializeFunction(*sub);
    PutVarint(&out, inner.size());
    out.append(inner);
  }
  return out;
}

namespace {

// Depth bound for nested subfunction payloads: compiled code nests a few
// levels at most, while a crafted record could otherwise recurse until the
// C++ stack overflows.
constexpr int kMaxSubfnDepth = 64;

Result<Function*> DeserializeFunctionImpl(CodeUnit* unit,
                                          std::string_view bytes,
                                          int depth) {
  if (depth > kMaxSubfnDepth) {
    return Status::Corruption("code: subfunction nesting too deep");
  }
  VarintReader r(bytes.data(), bytes.size());
  TML_ASSIGN_OR_RETURN(std::string magic, r.ReadBytes(5));
  if (magic != "TVMC1") return Status::Corruption("code: bad magic");
  Function* fn = unit->NewFunction();
  TML_ASSIGN_OR_RETURN(uint64_t nlen, r.ReadVarint());
  TML_ASSIGN_OR_RETURN(fn->name, r.ReadBytes(nlen));
  TML_ASSIGN_OR_RETURN(uint64_t nparams, r.ReadVarint());
  fn->num_params = static_cast<uint32_t>(nparams);
  TML_ASSIGN_OR_RETURN(uint64_t nregs, r.ReadVarint());
  fn->num_regs = static_cast<uint32_t>(nregs);
  TML_ASSIGN_OR_RETURN(uint64_t npool, r.ReadVarint());
  // Element counts are bounded by the remaining input (every element
  // consumes at least one byte) before any allocation is sized from them.
  if (npool > r.Remaining()) {
    return Status::Corruption("code: pool count exceeds input");
  }
  fn->pool.reserve(npool);
  for (uint64_t i = 0; i < npool; ++i) {
    TML_ASSIGN_OR_RETURN(Constant c, ReadConstant(&r));
    fn->pool.push_back(std::move(c));
  }
  TML_ASSIGN_OR_RETURN(uint64_t nfail, r.ReadVarint());
  if (nfail > r.Remaining() / 2) {
    return Status::Corruption("code: fail-info count exceeds input");
  }
  fn->fail_infos.reserve(nfail);
  for (uint64_t i = 0; i < nfail; ++i) {
    FailInfo f;
    TML_ASSIGN_OR_RETURN(int64_t target, r.ReadVarintSigned());
    f.target = static_cast<int32_t>(target);
    TML_ASSIGN_OR_RETURN(uint64_t reg, r.ReadVarint());
    f.exn_reg = static_cast<uint16_t>(reg);
    fn->fail_infos.push_back(f);
  }
  TML_ASSIGN_OR_RETURN(uint64_t ncaps, r.ReadVarint());
  if (ncaps > r.Remaining()) {
    return Status::Corruption("code: capture count exceeds input");
  }
  fn->cap_names.reserve(ncaps);
  for (uint64_t i = 0; i < ncaps; ++i) {
    TML_ASSIGN_OR_RETURN(uint64_t slen, r.ReadVarint());
    TML_ASSIGN_OR_RETURN(std::string s, r.ReadBytes(slen));
    fn->cap_names.push_back(std::move(s));
  }
  TML_ASSIGN_OR_RETURN(fn->ptml_oid, r.ReadVarint());
  TML_ASSIGN_OR_RETURN(uint64_t ncode, r.ReadVarint());
  // An instruction is an op byte plus five varints.
  if (ncode > r.Remaining() / 6) {
    return Status::Corruption("code: instruction count exceeds input");
  }
  fn->code.reserve(ncode);
  for (uint64_t i = 0; i < ncode; ++i) {
    Instr in;
    TML_ASSIGN_OR_RETURN(std::string op_b, r.ReadBytes(1));
    uint8_t op_raw = static_cast<uint8_t>(op_b[0]);
    // Fused opcodes decode too: code records persisted after superinstruction
    // promotion carry them, and the decode bound tracks ops.def via kNumOps.
    if (op_raw >= kNumOps) {
      return Status::Corruption("code: unknown opcode " +
                                std::to_string(op_raw));
    }
    in.op = static_cast<Op>(op_raw);
    TML_ASSIGN_OR_RETURN(uint64_t a, r.ReadVarint());
    TML_ASSIGN_OR_RETURN(uint64_t b, r.ReadVarint());
    TML_ASSIGN_OR_RETURN(uint64_t c, r.ReadVarint());
    TML_ASSIGN_OR_RETURN(int64_t d, r.ReadVarintSigned());
    TML_ASSIGN_OR_RETURN(int64_t fail, r.ReadVarintSigned());
    in.a = static_cast<uint16_t>(a);
    in.b = static_cast<uint16_t>(b);
    in.c = static_cast<uint16_t>(c);
    in.d = static_cast<int32_t>(d);
    in.fail = static_cast<int32_t>(fail);
    fn->code.push_back(in);
  }
  TML_ASSIGN_OR_RETURN(uint64_t nsub, r.ReadVarint());
  if (nsub > r.Remaining()) {
    return Status::Corruption("code: subfunction count exceeds input");
  }
  fn->subfns.reserve(nsub);
  for (uint64_t i = 0; i < nsub; ++i) {
    TML_ASSIGN_OR_RETURN(uint64_t ilen, r.ReadVarint());
    TML_ASSIGN_OR_RETURN(std::string inner, r.ReadBytes(ilen));
    TML_ASSIGN_OR_RETURN(Function * sub,
                         DeserializeFunctionImpl(unit, inner, depth + 1));
    fn->subfns.push_back(sub);
  }
  return fn;
}

}  // namespace

Result<Function*> DeserializeFunction(CodeUnit* unit, std::string_view bytes) {
  return DeserializeFunctionImpl(unit, bytes, 0);
}

}  // namespace tml::vm
