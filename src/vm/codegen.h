// TML -> TVM code generation.
//
// The §2.2 restriction that continuations are second class is what makes
// this translation possible on a stack machine (the paper's stated reason
// for the restriction):
//
//   - continuation abstractions compile to basic blocks with fixed
//     parameter registers,
//   - applying the caller's own cc compiles to RET, its own ce to RAISE,
//   - a call whose normal continuation is the caller's own cc (and whose
//     exception continuation is passed through) compiles to a tail call,
//   - a call with a *local* exception continuation brackets the call with
//     PUSHH/POPH (a handler-stack entry pointing at the handler block),
//   - the Y fixpoint compiles continuation bindings to loop-header blocks
//     (jumps with argument passing — Steele's "generalized goto") and
//     procedure bindings to mutually recursive closures patched with
//     SETCAP.
//
// Free variables of the compiled procedure become closure captures, loaded
// into registers by a GETCAP prologue; their spellings are recorded as
// Function::cap_names — the identifiers of the §4.1 R-value bindings.

#ifndef TML_VM_CODEGEN_H_
#define TML_VM_CODEGEN_H_

#include <string>

#include "core/module.h"
#include "core/node.h"
#include "support/status.h"
#include "vm/code.h"

namespace tml::vm {

/// Compile a proc abstraction (free variables allowed — they become closure
/// captures).  The returned Function is owned by `unit`.
Result<Function*> CompileProc(CodeUnit* unit, const ir::Module& m,
                              const ir::Abstraction* proc, std::string name);

}  // namespace tml::vm

#endif  // TML_VM_CODEGEN_H_
