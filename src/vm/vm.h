// The TVM interpreter.
//
// A register machine executing vm::Function bytecode.  Frames form a stack;
// exception handlers form a parallel stack of (frame, fail-info) pairs;
// RAISE unwinds frames to the nearest handler (or to the run boundary).
// OID-valued callees and relations are swizzled on demand through the
// RuntimeEnv, which is how "dynamically bound libraries" (§6) and persistent
// relations (§4.2) enter a running program.
//
// The query instructions (select/project/join/exists) re-enter the
// interpreter to evaluate TML predicate closures over each tuple — the
// integrated query/program execution of §4.2.

#ifndef TML_VM_VM_H_
#define TML_VM_VM_H_

#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/status.h"
#include "vm/code.h"
#include "vm/value.h"

namespace tml::vm {

class VM;

/// Bridge to the runtime system: OID swizzling.
class RuntimeEnv {
 public:
  virtual ~RuntimeEnv() = default;
  /// Resolve an OID to a runtime value (closure, relation array, ...).
  /// Returned heap values must be pinned by the implementation (VM::Pin)
  /// or re-created on each call.
  virtual Result<Value> ResolveOid(Oid oid, VM* vm) = 0;
};

/// A host function callable via the `ccall` primitive.
using HostFn =
    std::function<Result<Value>(VM* vm, std::span<const Value> args)>;

struct VMOptions {
  uint64_t max_steps = 4'000'000'000ull;
};

struct RunResult {
  Value value;
  bool raised = false;
  uint64_t steps = 0;  ///< instructions executed (the E1 cost proxy)
};

class VM {
 public:
  explicit VM(RuntimeEnv* env = nullptr, VMOptions opts = {});

  Heap* heap() { return &heap_; }

  /// Register a `ccall` host function (\"print\" is pre-registered).
  void RegisterHost(const std::string& name, HostFn fn);

  /// Make a closure for a function with no captures.
  Value MakeClosure(const Function* fn);

  /// Run a closure (or bare function) to completion.
  Result<RunResult> Run(const Function* fn, std::span<const Value> args);
  Result<RunResult> RunClosure(Value closure, std::span<const Value> args);

  /// Synchronous nested call used by the query instructions; `raised`
  /// reports a TML-level exception escaping the callee.
  struct CallOut {
    Value value;
    bool raised = false;
  };
  Result<CallOut> CallSync(Value callee, std::span<const Value> args);

  /// Pin a value as a permanent GC root (swizzled module closures).
  void Pin(Value v) { pins_.push_back(v); }

  /// Text written by the \"print\" host function; cleared by TakeOutput.
  std::string TakeOutput() { return std::move(output_); }
  std::string* mutable_output() { return &output_; }

  uint64_t total_steps() const { return total_steps_; }

 private:
  struct Frame {
    const ClosureObj* clo = nullptr;
    uint32_t pc = 0;
    uint16_t dst_reg = 0;     // caller register receiving RET value
    bool ret_through = false;  // demoted tail call: propagate RET upward
    std::vector<Value> regs;
  };
  struct Handler {
    size_t frame_index;
    int32_t fail_idx;
  };

  Status PushFrame(Value callee, std::span<const Value> args,
                   uint16_t dst_reg, bool ret_through);
  Result<Value> ResolveCallee(Value callee);

  /// Run until the frame stack drops back to `base`; out-params tell raise
  /// from return.
  Result<Value> Execute(size_t base, bool* raised);

  /// Route a fault: local fail-info, else unwind (bounded by `base`).
  /// Returns false when the fault escapes the run boundary.
  bool Fault(const Instr& in, Value exn, size_t base, Value* escaped);
  bool Unwind(Value exn, size_t base, Value* escaped);

  void MaybeCollect();
  void CollectGarbage();

  Value StringValue(const char* msg);

  RuntimeEnv* env_;
  VMOptions opts_;
  Heap heap_;
  std::vector<Frame> frames_;
  std::vector<Handler> handlers_;
  std::vector<Value> pins_;
  std::unordered_map<std::string, HostFn> hosts_;
  std::unordered_map<Oid, Value> swizzle_cache_;
  std::string output_;
  uint64_t total_steps_ = 0;
};

}  // namespace tml::vm

#endif  // TML_VM_VM_H_
