// The TVM interpreter.
//
// A register machine executing vm::Function bytecode.  Frames form a stack;
// exception handlers form a parallel stack of (frame, fail-info) pairs;
// RAISE unwinds frames to the nearest handler (or to the run boundary).
// OID-valued callees and relations are swizzled on demand through the
// RuntimeEnv, which is how "dynamically bound libraries" (§6) and persistent
// relations (§4.2) enter a running program.
//
// The query instructions (select/project/join/exists) re-enter the
// interpreter to evaluate TML predicate closures over each tuple — the
// integrated query/program execution of §4.2.

#ifndef TML_VM_VM_H_
#define TML_VM_VM_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/status.h"
#include "vm/code.h"
#include "vm/value.h"

namespace tml::vm {

class VM;

/// Bridge to the runtime system: OID swizzling.
class RuntimeEnv {
 public:
  virtual ~RuntimeEnv() = default;
  /// Resolve an OID to a runtime value (closure, relation array, ...).
  /// Returned heap values must be pinned by the implementation (VM::Pin)
  /// or re-created on each call.
  virtual Result<Value> ResolveOid(Oid oid, VM* vm) = 0;
};

/// A host function callable via the `ccall` primitive.
using HostFn =
    std::function<Result<Value>(VM* vm, std::span<const Value> args)>;

/// Interpreter dispatch strategy.  The handler bodies are identical (one
/// shared interp_loop.inc compiled twice); only the dispatch mechanism
/// differs, so both modes are always present in a binary that compiled the
/// threaded loop and differential tests can compare them in-process.
enum class DispatchMode : uint8_t {
  kAuto,      ///< TML_VM_DISPATCH env override, else threaded if available
  kSwitch,    ///< portable switch dispatch (the configure-time fallback)
  kThreaded,  ///< computed-goto threaded dispatch (GCC/Clang &&labels)
};

/// True when this binary was built with the computed-goto loop
/// (-DTML_VM_THREADED_DISPATCH, default ON for GNU/Clang).
bool ThreadedDispatchAvailable();
/// Resolve kAuto (TML_VM_DISPATCH=switch|threaded env override, else the
/// compile-time default) and downgrade kThreaded when unavailable.
DispatchMode ResolveDispatchMode(DispatchMode requested);
const char* DispatchModeName(DispatchMode mode);

struct VMOptions {
  uint64_t max_steps = 4'000'000'000ull;
  /// Per-run step budget: each *outermost* Run/RunClosure/CallSync may
  /// execute at most this many instructions before aborting with an
  /// OutOfRange status (0 = unlimited).  Unlike max_steps — a lifetime
  /// cap against runaway processes — this bounds a single program, so a
  /// long-lived server worker can cut off one hostile client CALL without
  /// wedging or poisoning the VM: the frame stack unwinds and the next
  /// run starts with a fresh budget.  Nested calls (query predicates,
  /// host re-entry) share the enclosing run's budget.
  uint64_t step_budget = 0;
  /// Per-VM heap budget in approximate live bytes (0 = unlimited).  When
  /// an allocation site would push Heap::bytes_allocated() past this, the
  /// VM first collects garbage; if still over, it raises a *catchable*
  /// TML fault ("out of memory") instead of aborting the process — a
  /// hostile allocation loop unwinds like any other raise, the heap stays
  /// coherent, and the next run proceeds normally once the garbage is
  /// collected.  An OOM raise that escapes the run is flagged on
  /// oom_raised() so the server can answer ERR_OOM, not ERR_RAISED.
  uint64_t heap_budget_bytes = 0;
  /// Maintain per-function execution counters (calls + steps attributed to
  /// the currently executing Function).  One frame-local increment per
  /// instruction plus one relaxed atomic add per call/return, so it is
  /// cheap enough to leave on; the adaptive optimizer feeds on it.
  bool profile = true;
  /// Batch the publication of mutator-local telemetry tallies to the
  /// shared registry counters.  0 (the default) publishes at every
  /// outermost run boundary — the single-threaded semantics tests rely on
  /// ("one completed Call() is already visible").  Worker VMs set a large
  /// batch so N threads don't contend on the same four atomic counters at
  /// every call; the remainder is flushed by ~VM().
  uint64_t telemetry_batch_steps = 0;
  /// Publish the currently executing function/opcode as two relaxed
  /// atomic stores per instruction, so a sampling profiler thread can
  /// snapshot "what is this VM doing right now" without locking the call
  /// path (see VM::exec_status; the adaptive VmSampler feeds on it).
  /// Fused superinstructions publish once per dispatch with the fused
  /// opcode — that is how the sampler reports the fused tier.
  bool exec_status = true;
  /// Interpreter loop selection; resolved once at VM construction.
  DispatchMode dispatch = DispatchMode::kAuto;
};

struct RunResult {
  Value value;
  bool raised = false;
  uint64_t steps = 0;  ///< instructions executed (the E1 cost proxy)
};

/// Shared per-function execution counters.  The mutator thread publishes
/// with relaxed atomic adds; a profiling thread reads via
/// VM::SnapshotProfile().  Steps are attributed to the function whose frame
/// executed them, so nested CallSync work (query predicate closures) lands
/// on the callee, not the enclosing Run.
struct FnCounters {
  std::atomic<uint64_t> calls{0};
  std::atomic<uint64_t> steps{0};
};

/// One row of a profile snapshot.
struct FnSample {
  const Function* fn = nullptr;
  uint64_t calls = 0;
  uint64_t steps = 0;
};

class VM {
 public:
  explicit VM(RuntimeEnv* env = nullptr, VMOptions opts = {});
  /// Flushes any batched telemetry remainder (see telemetry_batch_steps).
  ~VM();

  Heap* heap() { return &heap_; }

  /// Register a `ccall` host function (\"print\" is pre-registered).
  void RegisterHost(const std::string& name, HostFn fn);

  /// Make a closure for a function with no captures.
  Value MakeClosure(const Function* fn);

  /// Run a closure (or bare function) to completion.
  Result<RunResult> Run(const Function* fn, std::span<const Value> args);
  Result<RunResult> RunClosure(Value closure, std::span<const Value> args);

  /// Synchronous nested call used by the query instructions; `raised`
  /// reports a TML-level exception escaping the callee.
  struct CallOut {
    Value value;
    bool raised = false;
  };
  Result<CallOut> CallSync(Value callee, std::span<const Value> args);

  /// Pin a value as a permanent GC root (swizzled module closures).
  void Pin(Value v) { pins_.push_back(v); }

  /// Text written by the \"print\" host function; cleared by TakeOutput.
  std::string TakeOutput() { return std::move(output_); }
  std::string* mutable_output() { return &output_; }

  uint64_t total_steps() const { return total_steps_; }

  /// Consistent copy of the per-function profile.  Thread-safe: may be
  /// called from a background thread while the VM is executing.  Steps
  /// accumulated by frames still on the stack are not yet flushed (they
  /// publish on frame pop), so this is a sample, not an exact cut.
  std::vector<FnSample> SnapshotProfile();

  /// Adjust the per-run step budget (see VMOptions::step_budget; 0 =
  /// unlimited).  Takes effect at the next outermost run.  Mutator thread
  /// only — the server's dispatch workers set this per session before
  /// each CALL batch on their private VM.
  void set_step_budget(uint64_t budget) { opts_.step_budget = budget; }
  uint64_t step_budget() const { return opts_.step_budget; }

  /// Adjust the heap budget (see VMOptions::heap_budget_bytes; 0 =
  /// unlimited).  Takes effect at the next allocation site.  Mutator
  /// thread only.
  void set_heap_budget(uint64_t bytes) { opts_.heap_budget_bytes = bytes; }
  uint64_t heap_budget() const { return opts_.heap_budget_bytes; }

  /// Absolute CLOCK_MONOTONIC deadline for execution (0 = none): once
  /// MonotonicNowNs() passes it, the run aborts with a kDeadline status.
  /// Enforced through the step-budget polling seam — the hot path stays a
  /// single step-count compare, and the clock is read only every
  /// kDeadlinePollSteps instructions — so resolution is a few tens of
  /// microseconds of VM work, plenty for millisecond-scale request
  /// deadlines.  The server's dispatch workers arm this per request;
  /// blocking host calls are not interrupted (the check fires on the next
  /// executed instruction).  Mutator thread only.
  void set_run_deadline_ns(uint64_t abs_ns) { run_deadline_ns_ = abs_ns; }
  uint64_t run_deadline_ns() const { return run_deadline_ns_; }
  static uint64_t MonotonicNowNs();

  /// True when the most recent outermost run ended with an out-of-memory
  /// raise that no TML handler caught (see VMOptions::heap_budget_bytes).
  bool oom_raised() const { return oom_raised_; }

  /// Drop the cached swizzle for `oid` so the next resolution reloads it
  /// from the runtime environment — the installation hook of the adaptive
  /// optimizer (regenerated code replaces a closure's code record, then the
  /// stale cache entry is invalidated).  Safe to call from any thread; the
  /// VM drains pending invalidations before its next swizzle-cache lookup.
  void InvalidateSwizzle(Oid oid);

  /// What the VM is executing at this instant: the function on top of the
  /// frame stack and the opcode it is about to dispatch, or fn == nullptr
  /// when idle (outside any outermost run).  Thread-safe sampling seam:
  /// the interpreter publishes with relaxed stores (VMOptions::
  /// exec_status) and a profiler thread reads with relaxed loads — no
  /// lock, no fence.  The sampled Function* never dangles: functions are
  /// owned by CodeUnits that outlive every VM of the universe.
  struct ExecStatus {
    const Function* fn = nullptr;
    uint8_t op = 0;
  };
  ExecStatus exec_status() const {
    ExecStatus s;
    s.fn = exec_fn_.load(std::memory_order_relaxed);
    s.op = exec_op_.load(std::memory_order_relaxed);
    return s;
  }

  /// The dispatch mode this VM actually runs (kAuto already resolved).
  DispatchMode dispatch_mode() const { return dispatch_; }

 private:
  struct Frame {
    const ClosureObj* clo = nullptr;
    uint32_t pc = 0;
    uint16_t dst_reg = 0;     // caller register receiving RET value
    bool ret_through = false;  // demoted tail call: propagate RET upward
    FnCounters* prof = nullptr;  // counters of clo->fn (null: profiling off)
    uint64_t local_steps = 0;    // steps not yet flushed to prof->steps
    std::vector<Value> regs;
  };
  struct Handler {
    size_t frame_index;
    int32_t fail_idx;
  };

  Status PushFrame(Value callee, std::span<const Value> args,
                   uint16_t dst_reg, bool ret_through);
  /// Return a dead frame's register storage to frame_pool_ so the next
  /// PushFrame reuses its capacity instead of allocating.  Stale register
  /// Values (possibly dangling after a GC) stay in the buffer; PushFrame
  /// overwrites every slot before the frame becomes live again, and the
  /// pool is never scanned by the collector.
  void RecycleFrame(Frame&& fr) {
    if (frame_pool_.size() >= kFramePoolCap) return;
    fr.clo = nullptr;
    fr.prof = nullptr;
    fr.local_steps = 0;
    frame_pool_.push_back(std::move(fr));
  }
  Result<Value> ResolveCallee(Value callee);

  /// Run until the frame stack drops back to `base`; out-params tell raise
  /// from return.  Dispatches to the loop selected at construction; both
  /// loops compile from the shared interp_loop.inc handler bodies.
  Result<Value> Execute(size_t base, bool* raised);
  Result<Value> ExecuteSwitch(size_t base, bool* raised);
  /// Defined only when the binary carries the computed-goto loop
  /// (ThreadedDispatchAvailable()); never referenced otherwise.
  Result<Value> ExecuteThreaded(size_t base, bool* raised);
  /// Disambiguate the merged per-step deadline: lifetime max_steps
  /// (RuntimeError, checked first to match historical ordering) vs the
  /// per-run step budget (OutOfRange).
  Status StepLimitStatus() const;
  /// Slow path behind the loop's step-deadline compare: non-OK when a real
  /// limit (max_steps / step budget / wall-clock deadline) is exhausted;
  /// otherwise renews *soft_deadline to the next wall-clock poll point and
  /// execution continues.
  Status StepGate(uint64_t* soft_deadline);
  /// How many steps run between wall-clock reads (see set_run_deadline_ns).
  static constexpr uint64_t kDeadlinePollSteps = 32768;

  /// Route a fault: local fail-info, else unwind (bounded by `base`).
  /// Returns false when the fault escapes the run boundary.
  bool Fault(const Instr& in, Value exn, size_t base, Value* escaped);
  bool Unwind(Value exn, size_t base, Value* escaped);

  void MaybeCollect();
  void CollectGarbage();

  Value StringValue(const char* msg);

  /// Counter cell for `fn`, creating it on first use (mutator thread only).
  FnCounters* ProfileFor(const Function* fn);
  /// Publish a popped (or abandoned) frame's local step count.
  static void FlushFrameProfile(Frame& f) {
    if (f.prof != nullptr && f.local_steps != 0) {
      f.prof->steps.fetch_add(f.local_steps, std::memory_order_relaxed);
      f.local_steps = 0;
    }
  }
  /// Flush every frame at index >= `from` (before a stack truncation).
  void FlushFramesFrom(size_t from);
  /// Apply queued cross-thread swizzle invalidations (mutator thread).
  void DrainInvalidations();

  /// Flush the mutator-local telemetry tallies (steps, calls, raises,
  /// swizzle faults) to the global metrics registry as deltas.  Called at
  /// run boundaries so the hot interpreter loop never touches an atomic
  /// beyond the existing profile counters.
  void PublishTelemetry();
  /// Publish at an outermost run boundary, honoring the batch threshold.
  void MaybePublishTelemetry() {
    if (opts_.telemetry_batch_steps == 0 ||
        total_steps_ - published_steps_ >= opts_.telemetry_batch_steps) {
      PublishTelemetry();
    }
  }

  RuntimeEnv* env_;
  VMOptions opts_;
  /// opts_.dispatch with kAuto resolved (env override + build default).
  DispatchMode dispatch_ = DispatchMode::kSwitch;
  Heap heap_;
  std::vector<Frame> frames_;
  /// Recycled frames (dead regs vectors kept for their capacity).
  static constexpr size_t kFramePoolCap = 64;
  std::vector<Frame> frame_pool_;
  std::vector<Handler> handlers_;
  std::vector<Value> pins_;
  std::unordered_map<std::string, HostFn> hosts_;
  std::unordered_map<Oid, Value> swizzle_cache_;
  std::string output_;
  uint64_t total_steps_ = 0;
  /// The sampling-profiler seam (see exec_status()).  Written by the
  /// mutator with relaxed stores each dispatch; fn reset to nullptr when
  /// the outermost run exits, so idle VMs sample as idle.
  std::atomic<const Function*> exec_fn_{nullptr};
  std::atomic<uint8_t> exec_op_{0};
  /// total_steps_ value at which the current outermost run aborts with
  /// "step budget exceeded" (UINT64_MAX = no budget).  Armed at every
  /// outermost Run/RunClosure/CallSync entry from opts_.step_budget.
  uint64_t budget_deadline_ = UINT64_MAX;
  /// Absolute wall-clock deadline (see set_run_deadline_ns; 0 = none).
  uint64_t run_deadline_ns_ = 0;
  /// An OOM raise escaped the current/most recent outermost run (see
  /// VMOptions::heap_budget_bytes); cleared at every outermost run entry
  /// and whenever a TML handler catches the OOM.
  bool oom_raised_ = false;

  // Mutator-local telemetry tallies and their published watermarks (see
  // PublishTelemetry).
  uint64_t calls_ = 0;
  uint64_t raises_ = 0;
  uint64_t swizzle_faults_ = 0;
  uint64_t published_steps_ = 0;
  uint64_t published_calls_ = 0;
  uint64_t published_raises_ = 0;
  uint64_t published_swizzle_faults_ = 0;

  // Per-function profile.  The map structure is written only by the
  // mutator thread (under profile_mu_, because a background thread may be
  // iterating in SnapshotProfile); counter values are relaxed atomics.
  // unordered_map nodes are pointer-stable, so frames cache FnCounters*.
  std::mutex profile_mu_;
  std::unordered_map<const Function*, FnCounters> profile_;

  // Cross-thread swizzle invalidation: writers queue OIDs and bump the
  // epoch; the mutator drains the queue when it notices the epoch moved,
  // always before the next swizzle_cache_ lookup.
  std::mutex inval_mu_;
  std::vector<Oid> inval_queue_;
  std::atomic<uint64_t> inval_epoch_{0};
  uint64_t seen_inval_epoch_ = 0;
};

}  // namespace tml::vm

#endif  // TML_VM_VM_H_
