// Superinstruction fusion: the backend pass of the third execution tier.
//
// Rewrites hot straight-line opcode sequences into the fused opcodes
// declared in ops.def (TML_FUSED2/TML_FUSED3).  The fused opcode replaces
// the first slot of the sequence — keeping that slot's operands and fail
// route — while the following slots keep their original instructions, so
// jump targets into the middle of a fused sequence remain valid and the
// serialized record stays decodable by construction.
//
// The pass runs at ReflectOptimize time, after CompileProc and before the
// function is serialized into the store, so fused code persists and reloads
// like any other code record.

#ifndef TML_VM_FUSE_H_
#define TML_VM_FUSE_H_

#include <cstdint>

#include "vm/code.h"

namespace tml::vm {

struct FuseStats {
  uint64_t pairs_fused = 0;
  uint64_t triples_fused = 0;
  uint64_t functions_touched = 0;  ///< functions (incl. subfns) with >=1 fuse
};

/// Greedily fuse adjacent instructions of `fn` (and, recursively, its
/// subfunctions) against the ops.def pattern table.  Longer patterns win:
/// triples are tried before pairs at each position.  Idempotent — already
/// fused slots are skipped, never re-fused.
FuseStats FuseSuperinstructions(Function* fn);

/// True if any instruction of `fn` itself is a fused opcode (subfunctions
/// are not consulted) — the sampler's fused-tier detector.
bool ContainsFusedOps(const Function& fn);

}  // namespace tml::vm

#endif  // TML_VM_FUSE_H_
