#include "runtime/universe.h"

#include <unordered_set>

#include "core/analysis.h"
#include "core/parser.h"
#include "core/subst.h"
#include "core/validate.h"
#include "prims/standard.h"
#include "query/relation.h"
#include "support/fnv.h"
#include "support/varint.h"
#include "telemetry/flight.h"
#include "telemetry/trace.h"
#include "vm/fuse.h"

namespace tml::rt {

using ir::Abstraction;
using ir::Application;
using ir::Variable;

AtomicAdaptiveCounters::AtomicAdaptiveCounters() {
  auto& reg = telemetry::Registry::Global();
  polls.global = reg.GetCounter("tml.adaptive.polls");
  promotions.global = reg.GetCounter("tml.adaptive.promotions");
  backoffs.global = reg.GetCounter("tml.adaptive.backoffs");
  stale_rejections.global = reg.GetCounter("tml.adaptive.stale_rejections");
  reflect_failures.global = reg.GetCounter("tml.adaptive.reflect_failures");
  profile_persists.global = reg.GetCounter("tml.adaptive.profile_persists");
}

Universe::Universe(store::ObjectStore* store) : store_(store) {
  // Honor TYCOON_TRACE / TYCOON_METRICS_DUMP in every process that builds a
  // runtime, so benches and tools capture traces without extra plumbing.
  telemetry::InitFromEnv();
  published_.store(std::make_shared<const BindingSnapshot>(),
                   std::memory_order_release);
  vm_ = std::make_unique<vm::VM>(this);
  RegisterHostsOn(vm_.get());
}

Universe::~Universe() {
  // Stop background workers (adaptive manager) while the store and VMs are
  // still alive; only then let members tear down.
  StopServices();
}

void Universe::StopServices() {
  for (auto& s : services_) s->Stop();
  services_.clear();
}

void Universe::RegisterHostsOn(vm::VM* vm) {
  // `(ccall "reflect.stats" ...)`: the telemetry dump as a TML string.
  // Pass "json" as the first argument for the JSON rendering.
  vm->RegisterHost(
      "reflect.stats",
      [this](vm::VM* host_vm,
             std::span<const vm::Value> args) -> Result<vm::Value> {
        bool json = false;
        if (!args.empty() && args[0].is_obj() &&
            args[0].obj->kind == vm::ObjKind::kString) {
          json = static_cast<vm::StringObj*>(args[0].obj)->str == "json";
        }
        TelemetryReport rep = TelemetrySnapshot();
        vm::StringObj* s = host_vm->heap()->New<vm::StringObj>();
        s->str = json ? rep.ToJson() : rep.ToText();
        return vm::Value::ObjV(s);
      });
  // `(ccall "reflect.profile")`: the sampling profiler's hot-function
  // table as a JSON string — the paper's reflective loop closed over
  // observability: a TML program can ask which of its own functions are
  // hot and whether they run interpreted or reflect-optimized.
  vm->RegisterHost(
      "reflect.profile",
      [this](vm::VM* host_vm,
             std::span<const vm::Value>) -> Result<vm::Value> {
        vm::StringObj* s = host_vm->heap()->New<vm::StringObj>();
        s->str = ProfileJson();
        return vm::Value::ObjV(s);
      });
}

void Universe::SetProfileProvider(std::function<std::string()> provider) {
  std::lock_guard<std::mutex> lock(profile_provider_mu_);
  profile_provider_ = std::move(provider);
}

std::string Universe::ProfileJson() const {
  std::function<std::string()> provider;
  {
    std::lock_guard<std::mutex> lock(profile_provider_mu_);
    provider = profile_provider_;
  }
  if (!provider) return "{}";
  return provider();
}

vm::VM* Universe::AddWorkerVm() {
  vm::VMOptions opts;
  // Worker VMs batch their telemetry publication: N threads eagerly
  // flushing per-call deltas into the four shared registry counters is
  // exactly the kind of cross-core traffic the published-snapshot design
  // removes from the execution path.
  opts.telemetry_batch_steps = 1u << 20;
  return AddWorkerVm(opts);
}

vm::VM* Universe::AddWorkerVm(const vm::VMOptions& opts) {
  auto vm = std::make_unique<vm::VM>(this, opts);
  RegisterHostsOn(vm.get());
  vm::VM* raw = vm.get();
  std::lock_guard<std::mutex> lock(vms_mu_);
  worker_vms_.push_back(std::move(vm));
  return raw;
}

std::vector<vm::FnSample> Universe::SnapshotProfile() const {
  // Merge per-VM profiles by Function*: each VM's counters are monotone,
  // so the merged (calls, steps) per function are monotone too — the
  // delta logic in the adaptive manager stays valid.
  std::unordered_map<const vm::Function*, vm::FnSample> merged;
  auto fold = [&merged](vm::VM* vm) {
    for (const vm::FnSample& s : vm->SnapshotProfile()) {
      vm::FnSample& m = merged[s.fn];
      m.fn = s.fn;
      m.calls += s.calls;
      m.steps += s.steps;
    }
  };
  fold(vm_.get());
  {
    std::lock_guard<std::mutex> lock(vms_mu_);
    for (const auto& w : worker_vms_) fold(w.get());
  }
  std::vector<vm::FnSample> out;
  out.reserve(merged.size());
  for (auto& [fn, s] : merged) out.push_back(s);
  return out;
}

std::vector<vm::VM::ExecStatus> Universe::SampleExecStatus() const {
  std::vector<vm::VM::ExecStatus> out;
  out.push_back(vm_->exec_status());
  std::lock_guard<std::mutex> lock(vms_mu_);
  for (const auto& w : worker_vms_) out.push_back(w->exec_status());
  return out;
}

void Universe::AdoptService(std::unique_ptr<BackgroundService> service) {
  services_.push_back(std::move(service));
}

AdaptiveCounters Universe::adaptive_counters() const {
  AdaptiveCounters out;
  out.polls = adaptive_counters_.polls.value();
  out.promotions = adaptive_counters_.promotions.value();
  out.backoffs = adaptive_counters_.backoffs.value();
  out.stale_rejections = adaptive_counters_.stale_rejections.value();
  out.reflect_failures = adaptive_counters_.reflect_failures.value();
  out.profile_persists = adaptive_counters_.profile_persists.value();
  return out;
}

// ---- the published binding table -------------------------------------------

std::shared_ptr<BindingSnapshot> Universe::CloneSnapshotLocked() const {
  return std::make_shared<BindingSnapshot>(
      *published_.load(std::memory_order_acquire));
}

void Universe::PublishLocked(std::shared_ptr<BindingSnapshot> next) {
  next->generation = binding_gen_.load(std::memory_order_acquire);
  published_.store(std::shared_ptr<const BindingSnapshot>(std::move(next)),
                   std::memory_order_release);
}

Result<BindingSnapshot::Closure> Universe::LinkClosureLocked(
    Oid oid, const ClosureRecord& rec) {
  BindingSnapshot::Closure c;
  TML_ASSIGN_OR_RETURN(c.fn, LoadCodeLocked(rec.code_oid));
  fn_closures_[c.fn] = oid;
  c.cap_oids.reserve(c.fn->cap_names.size());
  for (const std::string& cap : c.fn->cap_names) {
    Oid bound = kNullOid;
    for (const auto& [name, boid] : rec.bindings) {
      if (name == cap) {
        bound = boid;
        break;
      }
    }
    if (bound == kNullOid) {
      return Status::NotFound("closure record for " + c.fn->name +
                              " lacks binding " + cap);
    }
    c.cap_oids.push_back(bound);
  }
  return c;
}

vm::Value Universe::MakeClosureValue(const BindingSnapshot::Closure& c,
                                     vm::VM* vm) {
  vm::ClosureObj* clo = vm->heap()->New<vm::ClosureObj>();
  clo->fn = c.fn;
  clo->caps.resize(c.cap_oids.size());
  for (size_t i = 0; i < c.cap_oids.size(); ++i) {
    clo->caps[i] = vm::Value::OidV(c.cap_oids[i]);
  }
  return vm::Value::ObjV(clo);
}

void Universe::InvalidateSwizzleAll(Oid oid) {
  vm_->InvalidateSwizzle(oid);
  std::lock_guard<std::mutex> lock(vms_mu_);
  for (const auto& w : worker_vms_) w->InvalidateSwizzle(oid);
}

// ---- closure records -------------------------------------------------------

std::string Universe::EncodeClosureRecord(const ClosureRecord& rec) const {
  std::string out;
  PutVarint(&out, rec.code_oid);
  PutVarint(&out, rec.bindings.size());
  for (const auto& [name, oid] : rec.bindings) {
    PutVarint(&out, name.size());
    out.append(name);
    PutVarint(&out, oid);
  }
  return out;
}

Result<Universe::ClosureRecord> Universe::LoadClosureRecordLocked(
    Oid oid) const {
  TML_ASSIGN_OR_RETURN(store::StoredObject obj, store_->Get(oid));
  if (obj.type != store::ObjType::kClosure) {
    return Status::Invalid("OID " + std::to_string(oid) +
                           " is not a closure record");
  }
  VarintReader r(obj.bytes.data(), obj.bytes.size());
  ClosureRecord rec;
  TML_ASSIGN_OR_RETURN(rec.code_oid, r.ReadVarint());
  TML_ASSIGN_OR_RETURN(uint64_t n, r.ReadVarint());
  for (uint64_t i = 0; i < n; ++i) {
    TML_ASSIGN_OR_RETURN(uint64_t len, r.ReadVarint());
    TML_ASSIGN_OR_RETURN(std::string name, r.ReadBytes(len));
    TML_ASSIGN_OR_RETURN(Oid boid, r.ReadVarint());
    rec.bindings.emplace_back(std::move(name), boid);
  }
  return rec;
}

Result<const vm::Function*> Universe::LoadCodeLocked(Oid code_oid) {
  auto it = code_cache_.find(code_oid);
  if (it != code_cache_.end()) return it->second;
  TML_ASSIGN_OR_RETURN(store::StoredObject obj, store_->Get(code_oid));
  if (obj.type != store::ObjType::kCode) {
    return Status::Invalid("OID " + std::to_string(code_oid) +
                           " is not a code object");
  }
  TML_ASSIGN_OR_RETURN(vm::Function * fn,
                       vm::DeserializeFunction(&code_unit_, obj.bytes));
  code_cache_[code_oid] = fn;
  return fn;
}

// ---- linking ---------------------------------------------------------------

Status Universe::InstallStdlib() {
  std::lock_guard<std::mutex> lock(mu_);
  return InstallStdlibLocked();
}

Status Universe::InstallStdlibLocked() {
  if (modules_.count("stdlib") != 0) return Status::OK();
  ir::Module m;
  std::unordered_map<std::string, Oid> names;
  auto next = CloneSnapshotLocked();
  for (const fe::LibraryEntry& entry : fe::StdlibEntries()) {
    auto parsed =
        ir::ParseValueText(&m, prims::StandardRegistry(), entry.tml);
    TML_RETURN_NOT_OK(parsed.status());
    const Abstraction* abs = ir::Cast<Abstraction>(parsed->value);
    TML_RETURN_NOT_OK(ir::Validate(m, abs));
    // Attach PTML: library functions must be reflectable (§4.1 inlines
    // complex.x / sqrt bodies through exactly this path).
    std::string ptml = store::EncodePtml(m, abs);
    TML_ASSIGN_OR_RETURN(Oid ptml_oid,
                         store_->Allocate(store::ObjType::kPtml, ptml));
    TML_ASSIGN_OR_RETURN(
        vm::Function * fn,
        vm::CompileProc(&code_unit_, m, abs,
                        std::string("stdlib.") + entry.name));
    fn->ptml_oid = ptml_oid;
    TML_ASSIGN_OR_RETURN(
        Oid code_oid,
        store_->Allocate(store::ObjType::kCode, vm::SerializeFunction(*fn)));
    code_cache_[code_oid] = fn;
    ClosureRecord rec;
    rec.code_oid = code_oid;
    TML_ASSIGN_OR_RETURN(
        Oid clo_oid, store_->Allocate(store::ObjType::kClosure,
                                      EncodeClosureRecord(rec)));
    fn_closures_[fn] = clo_oid;
    names[entry.name] = clo_oid;
    TML_ASSIGN_OR_RETURN(BindingSnapshot::Closure snap_clo,
                         LinkClosureLocked(clo_oid, rec));
    next->closures[clo_oid] = std::move(snap_clo);
  }
  next->modules["stdlib"] = names;
  modules_["stdlib"] = std::move(names);
  binding_gen_.fetch_add(1, std::memory_order_acq_rel);
  PublishLocked(std::move(next));
  return Status::OK();
}

Status Universe::LoadPersistedModules() {
  std::lock_guard<std::mutex> lock(mu_);
  auto next = CloneSnapshotLocked();
  bool changed = false;
  for (const std::string& root : store_->RootNames()) {
    if (root.rfind("module:", 0) != 0) continue;
    std::string name = root.substr(7);
    if (modules_.count(name) != 0) continue;
    TML_ASSIGN_OR_RETURN(Oid mod_oid, store_->GetRoot(root));
    TML_ASSIGN_OR_RETURN(store::StoredObject obj, store_->Get(mod_oid));
    if (obj.type != store::ObjType::kModule) {
      return Status::Corruption("root " + root + " is not a module record");
    }
    std::unordered_map<std::string, Oid> names;
    VarintReader r(obj.bytes.data(), obj.bytes.size());
    while (!r.AtEnd()) {
      TML_ASSIGN_OR_RETURN(uint64_t len, r.ReadVarint());
      TML_ASSIGN_OR_RETURN(std::string fname, r.ReadBytes(len));
      TML_ASSIGN_OR_RETURN(Oid oid, r.ReadVarint());
      names[fname] = oid;
    }
    // The export table is published now; the closures behind it fault in
    // lazily on first resolution (ResolveOidLocked republishes them).
    next->modules[name] = names;
    modules_[name] = std::move(names);
    changed = true;
  }
  // Re-attaching persisted modules rebinds names, so the generation moves —
  // but only when something was actually loaded (idempotent reopen).
  if (changed) {
    binding_gen_.fetch_add(1, std::memory_order_acq_rel);
    PublishLocked(std::move(next));
  }
  return Status::OK();
}

Result<Oid> Universe::ResolveNameLocked(
    const std::string& name,
    const std::unordered_map<std::string, Oid>& unit_names) const {
  auto it = unit_names.find(name);
  if (it != unit_names.end()) return it->second;
  auto stdlib = modules_.find("stdlib");
  if (stdlib != modules_.end()) {
    auto sit = stdlib->second.find(name);
    if (sit != stdlib->second.end()) return sit->second;
  }
  for (const auto& [mod, names] : modules_) {
    auto mit = names.find(name);
    if (mit != names.end()) return mit->second;
  }
  return Status::NotFound("unresolved free identifier: " + name);
}

Status Universe::InstallSource(const std::string& name,
                               std::string_view source,
                               fe::BindingMode binding,
                               const InstallOptions& opts) {
  std::lock_guard<std::mutex> lock(mu_);
  fe::CompileOptions copts;
  copts.binding = binding;
  if (binding == fe::BindingMode::kLibrary) {
    TML_RETURN_NOT_OK(InstallStdlibLocked());
  }
  TML_ASSIGN_OR_RETURN(
      fe::CompiledUnit unit,
      fe::Compile(source, prims::StandardRegistry(), copts));
  return InstallUnitLocked(name, unit, opts);
}

Status Universe::InstallUnit(const std::string& name,
                             const fe::CompiledUnit& unit,
                             const InstallOptions& opts) {
  std::lock_guard<std::mutex> lock(mu_);
  return InstallUnitLocked(name, unit, opts);
}

Status Universe::InstallUnitLocked(const std::string& name,
                                   const fe::CompiledUnit& unit,
                                   const InstallOptions& opts) {
  TML_TELEMETRY_SPAN("runtime", "runtime.install");
  if (modules_.count(name) != 0) {
    return Status::AlreadyExists("module already installed: " + name);
  }
  ir::Module* m = unit.module.get();
  // Pre-allocate closure OIDs so unit functions can refer to each other
  // (including self-recursion) through the store.
  std::unordered_map<std::string, Oid> unit_names;
  for (const fe::CompiledFunction& fn : unit.functions) {
    TML_ASSIGN_OR_RETURN(Oid oid,
                         store_->Allocate(store::ObjType::kClosure, ""));
    if (!unit_names.emplace(fn.name, oid).second) {
      return Status::AlreadyExists("duplicate function: " + fn.name);
    }
  }
  auto next = CloneSnapshotLocked();
  for (const fe::CompiledFunction& fn : unit.functions) {
    const Abstraction* abs = fn.abs;
    ir::ValidateOptions vopts;
    std::vector<const Variable*> frees(fn.free_vars.begin(),
                                       fn.free_vars.end());
    vopts.free = frees;
    TML_RETURN_NOT_OK(ir::Validate(*m, abs, vopts));
    if (opts.static_optimize) {
      // Local static optimization: free variables stay opaque, so this
      // cannot see across module/library boundaries (§6).
      abs = ir::Optimize(m, abs, opts.optimizer);
      TML_RETURN_NOT_OK(ir::Validate(*m, abs, vopts));
    }
    Oid ptml_oid = kNullOid;
    if (opts.attach_ptml) {
      std::string ptml = store::EncodePtml(*m, abs);
      TML_ASSIGN_OR_RETURN(ptml_oid,
                           store_->Allocate(store::ObjType::kPtml, ptml));
    }
    TML_ASSIGN_OR_RETURN(
        vm::Function * code,
        vm::CompileProc(&code_unit_, *m, abs, name + "." + fn.name));
    code->ptml_oid = ptml_oid;
    TML_ASSIGN_OR_RETURN(Oid code_oid,
                         store_->Allocate(store::ObjType::kCode,
                                          vm::SerializeFunction(*code)));
    code_cache_[code_oid] = code;
    ClosureRecord rec;
    rec.code_oid = code_oid;
    for (const std::string& free_name : code->cap_names) {
      TML_ASSIGN_OR_RETURN(Oid boid,
                           ResolveNameLocked(free_name, unit_names));
      rec.bindings.emplace_back(free_name, boid);
    }
    TML_RETURN_NOT_OK(store_->Put(unit_names[fn.name],
                                  store::ObjType::kClosure,
                                  EncodeClosureRecord(rec)));
    fn_closures_[code] = unit_names[fn.name];
    TML_ASSIGN_OR_RETURN(BindingSnapshot::Closure snap_clo,
                         LinkClosureLocked(unit_names[fn.name], rec));
    next->closures[unit_names[fn.name]] = std::move(snap_clo);
  }
  // Persist the module record.
  std::string mod_bytes;
  for (const auto& [fname, oid] : unit_names) {
    PutVarint(&mod_bytes, fname.size());
    mod_bytes.append(fname);
    PutVarint(&mod_bytes, oid);
  }
  TML_ASSIGN_OR_RETURN(Oid mod_oid, store_->Allocate(store::ObjType::kModule,
                                                     mod_bytes));
  TML_RETURN_NOT_OK(store_->SetRoot("module:" + name, mod_oid));
  next->modules[name] = unit_names;
  modules_[name] = std::move(unit_names);
  binding_gen_.fetch_add(1, std::memory_order_acq_rel);
  PublishLocked(std::move(next));
  return Status::OK();
}

Result<Oid> Universe::Lookup(const std::string& module,
                             const std::string& function) const {
  // Lock-free: name lookup reads the published snapshot, so worker threads
  // resolve entry points while installs run.
  std::shared_ptr<const BindingSnapshot> snap = CurrentSnapshot();
  auto it = snap->modules.find(module);
  if (it == snap->modules.end()) {
    return Status::NotFound("no module named " + module);
  }
  auto fit = it->second.find(function);
  if (fit == it->second.end()) {
    return Status::NotFound(module + " has no function " + function);
  }
  return fit->second;
}

Result<vm::RunResult> Universe::Call(Oid closure_oid,
                                     std::span<const vm::Value> args) {
  return vm_->RunClosure(vm::Value::OidV(closure_oid), args);
}

Result<vm::RunResult> Universe::Call(Oid closure_oid,
                                     std::span<const vm::Value> args,
                                     uint64_t step_budget) {
  uint64_t prev = vm_->step_budget();
  vm_->set_step_budget(step_budget);
  auto r = vm_->RunClosure(vm::Value::OidV(closure_oid), args);
  vm_->set_step_budget(prev);
  return r;
}

Result<Oid> Universe::StoreRelationBytes(std::string_view bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  return store_->Allocate(store::ObjType::kRelation, bytes);
}

// ---- adaptive optimization support ------------------------------------------

Result<bool> Universe::SwapCode(Oid target_closure, Oid optimized_closure,
                                uint64_t expected_generation) {
  TML_TELEMETRY_SPAN("adaptive", "adaptive.swap");
  std::lock_guard<std::mutex> lock(mu_);
  if (binding_gen_.load(std::memory_order_acquire) != expected_generation) {
    return false;  // bindings moved since the optimization was computed
  }
  TML_ASSIGN_OR_RETURN(ClosureRecord opt_rec,
                       LoadClosureRecordLocked(optimized_closure));
  TML_ASSIGN_OR_RETURN(ClosureRecord target_rec,
                       LoadClosureRecordLocked(target_closure));
  (void)target_rec;  // target must exist and be a closure record
  TML_RETURN_NOT_OK(store_->Put(target_closure, store::ObjType::kClosure,
                                EncodeClosureRecord(opt_rec)));
  TML_ASSIGN_OR_RETURN(BindingSnapshot::Closure snap_clo,
                       LinkClosureLocked(target_closure, opt_rec));
  auto next = CloneSnapshotLocked();
  next->closures[target_closure] = std::move(snap_clo);
  binding_gen_.fetch_add(1, std::memory_order_acq_rel);
  // Publish the new table BEFORE invalidating: a mutator that drains the
  // invalidation is then guaranteed to re-resolve against a snapshot at
  // least as new as this one (release/acquire through the epoch), so a
  // swap is never lost.  Frames already executing the old code finish on
  // it safely (code objects are never freed).
  PublishLocked(std::move(next));
  InvalidateSwizzleAll(target_closure);
  return true;
}

void Universe::InvalidateBinding(Oid oid) {
  std::lock_guard<std::mutex> lock(mu_);
  auto next = CloneSnapshotLocked();
  next->closures.erase(oid);
  binding_gen_.fetch_add(1, std::memory_order_acq_rel);
  PublishLocked(std::move(next));
  InvalidateSwizzleAll(oid);
}

Result<Oid> Universe::PutRootRecord(const std::string& root,
                                    store::ObjType type,
                                    std::string_view bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto existing = store_->GetRoot(root);
  if (existing.ok() && store_->Contains(*existing)) {
    TML_RETURN_NOT_OK(store_->Put(*existing, type, bytes));
    return *existing;
  }
  TML_ASSIGN_OR_RETURN(Oid oid, store_->Allocate(type, bytes));
  TML_RETURN_NOT_OK(store_->SetRoot(root, oid));
  return oid;
}

Result<store::StoredObject> Universe::GetRootRecord(
    const std::string& root) const {
  std::lock_guard<std::mutex> lock(mu_);
  TML_ASSIGN_OR_RETURN(Oid oid, store_->GetRoot(root));
  return store_->Get(oid);
}

Status Universe::CommitStore() {
  std::lock_guard<std::mutex> lock(mu_);
  return store_->Commit();
}

std::unordered_map<const vm::Function*, Oid>
Universe::FunctionClosureIndex() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fn_closures_;
}

Result<Oid> Universe::ClosureCodeOid(Oid closure_oid) const {
  std::lock_guard<std::mutex> lock(mu_);
  TML_ASSIGN_OR_RETURN(ClosureRecord rec,
                       LoadClosureRecordLocked(closure_oid));
  return rec.code_oid;
}

// ---- OID swizzling ----------------------------------------------------------

Result<vm::Value> Universe::ResolveOid(Oid oid, vm::VM* vm) {
  // Fast path — the execution path.  A published closure resolves from the
  // immutable snapshot: one atomic shared_ptr load, no lock, no store
  // access.  This is what lets N worker threads fault and re-swizzle
  // concurrently while an install or code swap runs.
  {
    std::shared_ptr<const BindingSnapshot> snap = CurrentSnapshot();
    auto it = snap->closures.find(oid);
    if (it != snap->closures.end()) {
      return MakeClosureValue(it->second, vm);
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  return ResolveOidLocked(oid, vm);
}

Result<vm::Value> Universe::ResolveOidLocked(Oid oid, vm::VM* vm) {
  // Re-check under the lock: another thread may have faulted the closure
  // in (and republished) while we waited.
  {
    std::shared_ptr<const BindingSnapshot> snap = CurrentSnapshot();
    auto it = snap->closures.find(oid);
    if (it != snap->closures.end()) {
      return MakeClosureValue(it->second, vm);
    }
  }
  TML_ASSIGN_OR_RETURN(store::StoredObject obj, store_->Get(oid));
  switch (obj.type) {
    case store::ObjType::kClosure: {
      TML_ASSIGN_OR_RETURN(ClosureRecord rec, LoadClosureRecordLocked(oid));
      TML_ASSIGN_OR_RETURN(BindingSnapshot::Closure snap_clo,
                           LinkClosureLocked(oid, rec));
      // Publish the faulted-in closure so every later resolution — from
      // any VM — takes the lock-free path.  No generation bump: loading a
      // persisted closure does not change what names are bound to.
      auto next = CloneSnapshotLocked();
      auto [it, inserted] = next->closures.emplace(oid, std::move(snap_clo));
      (void)inserted;
      vm::Value v = MakeClosureValue(it->second, vm);
      PublishLocked(std::move(next));
      return v;
    }
    case store::ObjType::kRelation:
      // Relations materialize onto the calling VM's private heap — a
      // per-VM value, nothing to publish.
      return query::RelationToHeap(obj.bytes, vm->heap());
    default:
      return Status::Invalid("OID " + std::to_string(oid) +
                             " is not callable or swizzlable");
  }
}

// ---- reflection (§4.1) -------------------------------------------------------

namespace {

// Every field participates in the cache fingerprint: two runs agree only
// when the optimizer would make identical decisions.
uint64_t HashOptimizerOptions(const ir::OptimizerOptions& o, uint64_t h) {
  auto mix = [&h](uint64_t v) { h = Fnv1a64U64(v, h); };
  mix(o.rewrite.enable_subst);
  mix(o.rewrite.enable_remove);
  mix(o.rewrite.enable_reduce);
  mix(o.rewrite.enable_eta);
  mix(o.rewrite.enable_fold);
  mix(o.rewrite.enable_case_subst);
  mix(o.rewrite.enable_y_rules);
  mix(static_cast<uint64_t>(o.rewrite.max_sweeps));
  mix(static_cast<uint64_t>(o.expand.always_inline_cost));
  mix(static_cast<uint64_t>(o.expand.budget));
  mix(static_cast<uint64_t>(o.expand.savings_per_static_arg));
  mix(static_cast<uint64_t>(o.expand.round_penalty));
  mix(static_cast<uint64_t>(o.expand.max_expansions_per_pass));
  mix(static_cast<uint64_t>(o.penalty_limit));
  mix(static_cast<uint64_t>(o.max_rounds));
  mix(static_cast<uint64_t>(o.fuse_superinstructions));
  return h;
}

}  // namespace

Status Universe::DiscoverReflectClosuresLocked(Oid root, ReflectStats* stats,
                                               std::vector<Discovered>* out) {
  TML_TELEMETRY_SPAN("reflect", "reflect.discover");
  // Discover all transitively reachable closures that carry PTML — the
  // single mutually recursive scope of §4.1.  Non-PTML objects (relations,
  // foreign code) stay opaque.  PTML stays undecoded here: the raw bytes
  // plus the binding lists are exactly what the cache fingerprint covers.
  constexpr size_t kMaxCollected = 512;
  std::unordered_set<Oid> seen;
  std::vector<Oid> worklist{root};
  while (!worklist.empty()) {
    Oid oid = worklist.back();
    worklist.pop_back();
    if (!seen.insert(oid).second) continue;
    auto obj = store_->Get(oid);
    if (!obj.ok() || obj->type != store::ObjType::kClosure ||
        out->size() >= kMaxCollected) {
      if (stats != nullptr) ++stats->opaque_bindings;
      continue;
    }
    TML_ASSIGN_OR_RETURN(ClosureRecord rec, LoadClosureRecordLocked(oid));
    TML_ASSIGN_OR_RETURN(const vm::Function* fn,
                         LoadCodeLocked(rec.code_oid));
    if (fn->ptml_oid == kNullOid) {
      if (stats != nullptr) ++stats->opaque_bindings;
      continue;
    }
    TML_ASSIGN_OR_RETURN(store::StoredObject ptml,
                         store_->Get(fn->ptml_oid));
    for (const auto& [bname, boid] : rec.bindings) worklist.push_back(boid);
    out->push_back(
        Discovered{oid, std::move(rec), fn, std::move(ptml.bytes)});
  }
  if (out->empty() || out->front().oid != root) {
    return Status::Invalid(
        "reflect.optimize: the target closure carries no PTML record");
  }
  return Status::OK();
}

uint64_t Universe::FingerprintReflect(
    const std::vector<Discovered>& discovered,
    const ir::OptimizerOptions& opts) const {
  // First-occurrence order of the discovery walk is deterministic, so the
  // fingerprint is stable across processes.  Binding OIDs of opaque
  // dependencies appear in the collected closures' binding lists, so a
  // rebound dependency — collapsed or opaque — changes the fingerprint.
  uint64_t h = Fnv1a64("tml-reflect-cache-v1");
  for (const Discovered& d : discovered) {
    h = Fnv1a64U64(d.ptml_bytes.size(), h);
    h = Fnv1a64(d.ptml_bytes, h);
    h = Fnv1a64U64(d.rec.bindings.size(), h);
    for (const auto& [name, oid] : d.rec.bindings) {
      h = Fnv1a64U64(name.size(), h);
      h = Fnv1a64(name, h);
      h = Fnv1a64U64(oid, h);
    }
  }
  return HashOptimizerOptions(opts, h);
}

Result<const Abstraction*> Universe::BuildReflectTermLocked(
    ir::Module* m, Oid root, const std::vector<Discovered>& discovered,
    ReflectStats* stats) {
  TML_TELEMETRY_SPAN("reflect", "reflect.build");
  // Decode each discovered PTML record and assign its closure a canonical
  // variable.
  std::unordered_map<Oid, Variable*> canon;
  std::vector<store::PtmlDecoded> decoded;
  decoded.reserve(discovered.size());
  for (const Discovered& d : discovered) {
    auto dec = store::DecodePtml(m, prims::StandardRegistry(), d.ptml_bytes);
    TML_RETURN_NOT_OK(dec.status());
    canon[d.oid] = m->NewValueVar(d.fn->name);
    decoded.push_back(std::move(*dec));
  }
  // Re-establish the R-value bindings — substitute each free variable by
  // the canonical variable of a collected declaration, or by an opaque OID
  // leaf (exactly the [identifier, OID] pairs of §4.1).
  struct Collected {
    Oid oid;
    Variable* var;
    const Abstraction* abs;
  };
  std::vector<Collected> order;
  order.reserve(discovered.size());
  for (size_t i = 0; i < discovered.size(); ++i) {
    const Discovered& d = discovered[i];
    const Application* body = decoded[i].abs->body();
    for (Variable* fv : decoded[i].free_vars) {
      std::string fname(m->NameOf(*fv));
      Oid dep = kNullOid;
      for (const auto& [bname, boid] : d.rec.bindings) {
        if (bname == fname) {
          dep = boid;
          break;
        }
      }
      if (dep == kNullOid) {
        return Status::NotFound("closure record lacks binding for " + fname);
      }
      const ir::Value* repl;
      auto cit = canon.find(dep);
      if (cit != canon.end()) {
        repl = cit->second;
        if (stats != nullptr) ++stats->bindings_resolved;
      } else {
        repl = m->OidVal(dep);
      }
      body = ir::Substitute(m, body, fv, repl);
    }
    order.push_back(
        Collected{d.oid, canon.at(d.oid), m->Abs(decoded[i].abs->params(),
                                                 body)});
  }
  const Abstraction* root_abs = nullptr;
  for (const Collected& c : order) {
    if (c.oid == root) root_abs = c.abs;
  }

  // Fresh top-level parameters mirroring the root's signature.
  size_t num_value = root_abs->num_value_params();
  std::vector<Variable*> params;
  std::vector<const ir::Value*> call_args;
  for (size_t i = 0; i < num_value; ++i) {
    Variable* q = m->NewValueVar("q" + std::to_string(i));
    params.push_back(q);
    call_args.push_back(q);
  }
  Variable* ce = m->NewContVar("ce");
  Variable* cc = m->NewContVar("cc");
  params.push_back(ce);
  params.push_back(cc);
  call_args.push_back(ce);
  call_args.push_back(cc);

  // One mutually recursive scope through the Y combinator — "recursive
  // declarations of functions, values, or queries are represented uniformly
  // through applications of the fixpoint combinator Y" (§4.2).
  Variable* root_var = nullptr;
  for (const Collected& c : order) {
    if (c.oid == root) root_var = c.var;
  }
  const Application* call =
      m->App(root_var, std::span<const ir::Value* const>(call_args.data(),
                                                         call_args.size()));
  Variable* c0 = m->NewContVar("c0");
  Variable* c = m->NewContVar("c");
  std::vector<Variable*> gen_params;
  gen_params.push_back(c0);
  std::vector<const ir::Value*> rets;
  rets.push_back(m->Abs({}, call));  // the entry continuation
  for (const Collected& node : order) {
    gen_params.push_back(node.var);
    rets.push_back(node.abs);
  }
  gen_params.push_back(c);
  const Application* ybody =
      m->App(c, std::span<const ir::Value* const>(rets.data(), rets.size()));
  const Abstraction* gen = m->Abs(
      std::span<Variable* const>(gen_params.data(), gen_params.size()),
      ybody);
  const ir::Primitive* y = prims::StandardRegistry().LookupOp(ir::PrimOp::kY);
  const Application* body = m->App(m->Prim(y), {gen});
  return m->Abs(std::span<Variable* const>(params.data(), params.size()),
                body);
}

Result<const Abstraction*> Universe::ReflectTerm(Oid closure_oid,
                                                 ir::Module* m,
                                                 ReflectStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Discovered> discovered;
  TML_RETURN_NOT_OK(
      DiscoverReflectClosuresLocked(closure_oid, stats, &discovered));
  return BuildReflectTermLocked(m, closure_oid, discovered, stats);
}

Status Universe::EnsureReflectCacheLoadedLocked() {
  if (reflect_cache_loaded_) return Status::OK();
  reflect_cache_loaded_ = true;
  auto root = store_->GetRoot(store::kReflectCacheRoot);
  if (!root.ok()) return Status::OK();  // nothing persisted yet
  reflect_cache_oid_ = *root;
  // The cache is advisory: a missing, retyped, quarantined-by-salvage, or
  // undecodable index record degrades to an empty cache (the next miss
  // rewrites it) rather than making reflection unavailable.
  //
  // Registry cells are pinned for the process lifetime (the registry is a
  // leaked singleton and Reset() zeroes in place), so caching the pointer
  // is safe even across telemetry resets.
  static telemetry::Counter* degraded =
      telemetry::Registry::Global().GetCounter(
          "tml.reflect.cache_corrupt_degrades");
  auto obj = store_->Get(reflect_cache_oid_);
  if (!obj.ok() || obj->type != store::ObjType::kReflectCache) {
    degraded->Increment();
    return Status::OK();
  }
  auto entries = store::DecodeReflectCache(obj->bytes);
  if (!entries.ok()) {
    degraded->Increment();
    return Status::OK();
  }
  for (const store::ReflectCacheEntry& e : *entries) {
    reflect_cache_[e.fingerprint] = e;
  }
  return Status::OK();
}

Status Universe::PersistReflectCacheLocked() {
  std::vector<store::ReflectCacheEntry> entries;
  entries.reserve(reflect_cache_.size());
  for (const auto& [fp, e] : reflect_cache_) entries.push_back(e);
  std::string bytes = store::EncodeReflectCache(std::move(entries));
  Status st;
  if (reflect_cache_oid_ == kNullOid) {
    auto oid = store_->Allocate(store::ObjType::kReflectCache, bytes);
    if (oid.ok()) {
      reflect_cache_oid_ = *oid;
      st = store_->SetRoot(store::kReflectCacheRoot, reflect_cache_oid_);
    } else {
      st = oid.status();
    }
  } else {
    st = store_->Put(reflect_cache_oid_, store::ObjType::kReflectCache,
                     bytes);
  }
  if (!st.ok() && st.code() == StatusCode::kIOError) {
    // The index is a rebuildable acceleration structure: on a full or
    // poisoned disk, keep serving from the in-memory cache and let a
    // later persist (or the next cold start) repopulate it.
    static telemetry::Counter* persist_failures =
        telemetry::Registry::Global().GetCounter(
            "tml.reflect.cache_persist_failures");
    persist_failures->Increment();
    return Status::OK();
  }
  return st;
}

Result<Oid> Universe::ReflectOptimize(Oid closure_oid,
                                      const ir::OptimizerOptions& opts,
                                      ReflectStats* stats) {
  TML_TELEMETRY_SPAN("reflect", "reflect.optimize");
  static telemetry::Counter* runs =
      telemetry::Registry::Global().GetCounter("tml.reflect.runs");
  static telemetry::Counter* g_hits =
      telemetry::Registry::Global().GetCounter("tml.reflect.cache_hits");
  static telemetry::Counter* g_misses =
      telemetry::Registry::Global().GetCounter("tml.reflect.cache_misses");
  static telemetry::Histogram* latency =
      telemetry::Registry::Global().GetHistogram("tml.reflect.latency_us");
  const uint64_t start_ns = telemetry::Tracer::NowNs();
  runs->Increment();
  std::lock_guard<std::mutex> lock(mu_);
  TML_RETURN_NOT_OK(EnsureReflectCacheLoadedLocked());
  std::vector<Discovered> discovered;
  TML_RETURN_NOT_OK(
      DiscoverReflectClosuresLocked(closure_oid, stats, &discovered));
  uint64_t fp = FingerprintReflect(discovered, opts);
  auto hit = reflect_cache_.find(fp);
  if (hit != reflect_cache_.end()) {
    const store::ReflectCacheEntry& e = hit->second;
    if (store_->Contains(e.closure_oid) && store_->Contains(e.code_oid)) {
      if (stats != nullptr) {
        ++stats->cache_hits;
        stats->cache_bytes =
            store_->live_bytes(store::ObjType::kReflectCache);
      }
      g_hits->Increment();
      latency->Observe((telemetry::Tracer::NowNs() - start_ns) / 1000);
      return e.closure_oid;
    }
    // The regenerated records were deleted out from under the index; drop
    // the stale entry and fall through to a full re-optimization.
    reflect_cache_.erase(hit);
  }
  if (stats != nullptr) ++stats->cache_misses;
  g_misses->Increment();

  auto module = std::make_unique<ir::Module>();
  ir::Module* m = module.get();
  TML_ASSIGN_OR_RETURN(
      const Abstraction* wrapped,
      BuildReflectTermLocked(m, closure_oid, discovered, stats));
  if (stats != nullptr) {
    stats->input_term_size = 1 + ir::TermSize(wrapped->body());
  }
  TML_RETURN_NOT_OK(ir::Validate(*m, wrapped));
  const Abstraction* optimized =
      ir::Optimize(m, wrapped, opts,
                   stats != nullptr ? &stats->optimizer : nullptr);
  // Record what the optimizer produced BEFORE validating it: when the
  // post-optimize Validate rejects the term, the caller still sees which
  // passes ran and what they yielded (out-params stay truthful on the
  // error path).
  if (stats != nullptr) {
    stats->output_term_size = 1 + ir::TermSize(optimized->body());
  }
  TML_RETURN_NOT_OK(ir::Validate(*m, optimized));

  std::string fname = "reflect$" + std::to_string(++reflect_counter_);
  // Attach PTML to the regenerated code so the result is itself
  // re-optimizable (the optimizer output is a persistent term too).
  std::string ptml = store::EncodePtml(*m, optimized);
  TML_ASSIGN_OR_RETURN(Oid ptml_oid,
                       store_->Allocate(store::ObjType::kPtml, ptml));
  TML_ASSIGN_OR_RETURN(vm::Function * code,
                       vm::CompileProc(&code_unit_, *m, optimized, fname));
  code->ptml_oid = ptml_oid;
  if (opts.fuse_superinstructions) {
    // Backend tier promotion: rewrite hot adjacent sequences into
    // superinstructions before the record is serialized, so the fused
    // code persists and reloads like any other code record.
    vm::FuseStats fs = vm::FuseSuperinstructions(code);
    if (stats != nullptr) {
      stats->superinstructions_fused += fs.pairs_fused + fs.triples_fused;
    }
  }
  TML_ASSIGN_OR_RETURN(Oid code_oid,
                       store_->Allocate(store::ObjType::kCode,
                                        vm::SerializeFunction(*code)));
  code_cache_[code_oid] = code;
  ClosureRecord rec;
  rec.code_oid = code_oid;
  if (!code->cap_names.empty()) {
    return Status::Invalid(
        "reflect.optimize: residual free variables after global binding");
  }
  TML_ASSIGN_OR_RETURN(Oid clo_oid,
                       store_->Allocate(store::ObjType::kClosure,
                                        EncodeClosureRecord(rec)));
  fn_closures_[code] = clo_oid;
  // Publish the regenerated closure (no caps, no generation change — it
  // binds no new names) so calls to it take the lock-free path.
  {
    BindingSnapshot::Closure snap_clo;
    snap_clo.fn = code;
    auto next = CloneSnapshotLocked();
    next->closures[clo_oid] = std::move(snap_clo);
    PublishLocked(std::move(next));
  }
  reflect_cache_[fp] =
      store::ReflectCacheEntry{fp, clo_oid, code_oid, ptml_oid};
  TML_RETURN_NOT_OK(PersistReflectCacheLocked());
  if (stats != nullptr) {
    stats->cache_bytes = store_->live_bytes(store::ObjType::kReflectCache);
  }
  reflected_modules_.push_back(std::move(module));
  latency->Observe((telemetry::Tracer::NowNs() - start_ns) / 1000);
  return clo_oid;
}

Universe::SizeReport Universe::Sizes() const {
  std::lock_guard<std::mutex> lock(mu_);
  SizeReport r;
  r.code_bytes = store_->live_bytes(store::ObjType::kCode);
  r.ptml_bytes = store_->live_bytes(store::ObjType::kPtml);
  r.closure_bytes = store_->live_bytes(store::ObjType::kClosure);
  return r;
}

// ---- telemetry export ------------------------------------------------------

Universe::TelemetryReport Universe::TelemetrySnapshot() const {
  // Fold the derived observability gauges (trace drops, flight-recorder
  // overwrites) into the registry first, so every STATS/scrape rendering
  // carries them without a side channel.
  telemetry::RefreshObservabilityGauges();
  TelemetryReport rep;
  rep.metrics = telemetry::Registry::Global().Snapshot();
  rep.adaptive = adaptive_counters();
  rep.sizes = Sizes();
  rep.trace_events_dropped = telemetry::Tracer::Global().dropped();
  return rep;
}

std::string Universe::TelemetryReport::ToText() const {
  std::string out = telemetry::FormatText(metrics);
  out += "adaptive: polls=" + std::to_string(adaptive.polls) +
         " promotions=" + std::to_string(adaptive.promotions) +
         " backoffs=" + std::to_string(adaptive.backoffs) +
         " stale_rejections=" + std::to_string(adaptive.stale_rejections) +
         " reflect_failures=" + std::to_string(adaptive.reflect_failures) +
         " profile_persists=" + std::to_string(adaptive.profile_persists) +
         "\n";
  out += "store: code_bytes=" + std::to_string(sizes.code_bytes) +
         " ptml_bytes=" + std::to_string(sizes.ptml_bytes) +
         " closure_bytes=" + std::to_string(sizes.closure_bytes) + "\n";
  if (trace_events_dropped != 0) {
    out += "trace: dropped=" + std::to_string(trace_events_dropped) + "\n";
  }
  return out;
}

std::string Universe::TelemetryReport::ToJson() const {
  std::string metrics_json = telemetry::FormatJson(metrics);
  while (!metrics_json.empty() && metrics_json.back() == '\n') {
    metrics_json.pop_back();
  }
  std::string out = "{\n\"metrics\": " + metrics_json + ",\n";
  out += "\"adaptive\": {\"polls\": " + std::to_string(adaptive.polls) +
         ", \"promotions\": " + std::to_string(adaptive.promotions) +
         ", \"backoffs\": " + std::to_string(adaptive.backoffs) +
         ", \"stale_rejections\": " +
         std::to_string(adaptive.stale_rejections) +
         ", \"reflect_failures\": " +
         std::to_string(adaptive.reflect_failures) +
         ", \"profile_persists\": " +
         std::to_string(adaptive.profile_persists) + "},\n";
  out += "\"sizes\": {\"code_bytes\": " + std::to_string(sizes.code_bytes) +
         ", \"ptml_bytes\": " + std::to_string(sizes.ptml_bytes) +
         ", \"closure_bytes\": " + std::to_string(sizes.closure_bytes) +
         "},\n";
  out += "\"trace_events_dropped\": " +
         std::to_string(trace_events_dropped) + "\n}\n";
  return out;
}

}  // namespace tml::rt
