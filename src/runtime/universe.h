// The runtime system: persistent modules, linking, and the reflective
// optimizer (paper §4.1, Fig. 3).
//
// A Universe ties together an object store and a TVM.  Compilation units
// are installed as persistent modules: for every function the store holds
//
//   kCode     — serialized TVM bytecode (with nested subfunctions),
//   kPtml     — the compact persistent TML tree the back end attaches,
//   kClosure  — the closure record: code OID + the R-value bindings
//               ([identifier, OID] pairs) of the function's free variables,
//   kModule   — the module record mapping export names to closure OIDs.
//
// Cross-module references are OIDs; the VM swizzles them on first call, so
// every library operation in kLibrary-mode code costs an indirect call —
// the §6 situation that local static optimization cannot fix.
//
// ReflectOptimize implements `reflect.optimize(f)`: map PTML back to TML,
// re-establish the R-value bindings of the closure record, collect (via
// transitive reachability) all contributing declarations into one scope,
// run the ordinary TML optimizer across the collapsed abstraction barriers,
// regenerate code and link it into the running program.

#ifndef TML_RUNTIME_UNIVERSE_H_
#define TML_RUNTIME_UNIVERSE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/module.h"
#include "core/optimizer.h"
#include "frontend/compile.h"
#include "store/object_store.h"
#include "store/ptml.h"
#include "store/reflect_cache.h"
#include "vm/codegen.h"
#include "vm/vm.h"

namespace tml::rt {

/// How a unit is installed.
struct InstallOptions {
  /// Attach PTML records to generated code (enables reflection; costs
  /// space — the E2 trade-off).
  bool attach_ptml = true;
  /// Run the *local static* optimizer on each function before code
  /// generation (free variables stay opaque — abstraction barriers hold).
  bool static_optimize = false;
  ir::OptimizerOptions optimizer;
};

struct ReflectStats {
  ir::OptimizerStats optimizer;
  size_t bindings_resolved = 0;  ///< PTML-bearing bindings collapsed
  size_t opaque_bindings = 0;    ///< left as OID leaves
  size_t input_term_size = 0;
  size_t output_term_size = 0;
  // Persistent reflect-cache accounting.  On a hit only the discovery
  // traversal runs: decode, optimize and codegen are skipped, so the
  // optimizer/term-size fields above stay untouched.
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  size_t cache_bytes = 0;  ///< live bytes of the kReflectCache index
};

class Universe : public vm::RuntimeEnv {
 public:
  explicit Universe(store::ObjectStore* store);
  ~Universe() override;

  vm::VM* vm() { return vm_.get(); }
  store::ObjectStore* object_store() { return store_; }

  /// Install the standard library module ("stdlib") used by kLibrary-mode
  /// code; idempotent.
  Status InstallStdlib();

  /// Re-attach the modules persisted in the store (roots named
  /// "module:<name>") — the open-database restart path: code, PTML and
  /// closure records all come back from disk.
  Status LoadPersistedModules();

  /// Compile-and-install TL source as module `name`.  Free names resolve
  /// against earlier functions of the same unit (including self/mutual
  /// recursion), previously installed modules, and stdlib.
  Status InstallSource(const std::string& name, std::string_view source,
                       fe::BindingMode binding,
                       const InstallOptions& opts = {});

  /// Install an already-compiled unit.
  Status InstallUnit(const std::string& name, const fe::CompiledUnit& unit,
                     const InstallOptions& opts = {});

  /// Closure OID of `module.function`.
  Result<Oid> Lookup(const std::string& module,
                     const std::string& function) const;

  /// Call a persistent function by closure OID.
  Result<vm::RunResult> Call(Oid closure_oid,
                             std::span<const vm::Value> args);

  /// reflect.optimize: build a globally bound TML term for the closure,
  /// optimize across abstraction barriers, regenerate code, and return a
  /// runnable closure value (also persisted; the returned OID can be
  /// Call()ed like any other function).
  ///
  /// Results are memoized in a persistent cache keyed by a fingerprint of
  /// (PTML bytes, resolved R-value binding OIDs in first-occurrence order,
  /// optimizer options): a repeated call — including one in a fresh
  /// Universe after the store is reopened — links the previously
  /// regenerated code instead of re-decoding, re-optimizing and
  /// re-generating.  Changing any binding OID, any PTML record, or the
  /// options changes the fingerprint, so stale entries are never served.
  Result<Oid> ReflectOptimize(Oid closure_oid,
                              const ir::OptimizerOptions& opts = {},
                              ReflectStats* stats = nullptr);

  /// The reflectively optimized TML term for a closure, before codegen
  /// (used by examples/tests to show the §4.1 pipeline).
  Result<const ir::Abstraction*> ReflectTerm(Oid closure_oid,
                                             ir::Module* out_module,
                                             ReflectStats* stats = nullptr);

  /// Store a relation payload, returning its OID (see query/relation.h for
  /// the payload format).
  Result<Oid> StoreRelationBytes(std::string_view bytes);

  // ---- E2 accounting ----
  struct SizeReport {
    size_t code_bytes = 0;
    size_t ptml_bytes = 0;
    size_t closure_bytes = 0;
  };
  SizeReport Sizes() const;

  // vm::RuntimeEnv:
  Result<vm::Value> ResolveOid(Oid oid, vm::VM* vm) override;

 private:
  struct ClosureRecord {
    Oid code_oid = kNullOid;
    std::vector<std::pair<std::string, Oid>> bindings;
  };

  Result<ClosureRecord> LoadClosureRecord(Oid oid) const;
  std::string EncodeClosureRecord(const ClosureRecord& rec) const;
  Result<const vm::Function*> LoadCode(Oid code_oid);
  Result<Oid> ResolveName(const std::string& name,
                          const std::unordered_map<std::string, Oid>&
                              unit_names) const;

  // Reflection helpers.
  //
  // Discovery (the §4.1 transitive-reachability walk) is separated from
  // term building so that ReflectOptimize can fingerprint the raw inputs —
  // PTML bytes plus closure-record bindings — and serve a cache hit
  // without ever decoding PTML or running the optimizer.
  struct Discovered {
    Oid oid = kNullOid;
    ClosureRecord rec;
    const vm::Function* fn = nullptr;  // deserialized code (ptml_oid != 0)
    std::string ptml_bytes;            // raw PTML record, not yet decoded
  };
  Status DiscoverReflectClosures(Oid root, ReflectStats* stats,
                                 std::vector<Discovered>* out);
  uint64_t FingerprintReflect(const std::vector<Discovered>& discovered,
                              const ir::OptimizerOptions& opts) const;
  Result<const ir::Abstraction*> BuildReflectTerm(
      ir::Module* m, Oid root, const std::vector<Discovered>& discovered,
      ReflectStats* stats);
  Status EnsureReflectCacheLoaded();
  Status PersistReflectCache();

  store::ObjectStore* store_;
  std::unique_ptr<vm::VM> vm_;
  vm::CodeUnit code_unit_;
  std::unordered_map<Oid, const vm::Function*> code_cache_;
  /// Keeps reflected IR modules alive (their terms back compiled code
  /// metadata such as names).
  std::vector<std::unique_ptr<ir::Module>> reflected_modules_;
  /// module name -> (function name -> closure oid)
  std::unordered_map<std::string,
                     std::unordered_map<std::string, Oid>>
      modules_;
  int reflect_counter_ = 0;
  /// fingerprint -> regenerated result; mirrored in the store as a single
  /// kReflectCache index record under the "reflect-cache" root (loaded
  /// lazily on the first ReflectOptimize).
  std::unordered_map<uint64_t, store::ReflectCacheEntry> reflect_cache_;
  Oid reflect_cache_oid_ = kNullOid;
  bool reflect_cache_loaded_ = false;
};

}  // namespace tml::rt

#endif  // TML_RUNTIME_UNIVERSE_H_
