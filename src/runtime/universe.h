// The runtime system: persistent modules, linking, and the reflective
// optimizer (paper §4.1, Fig. 3).
//
// A Universe ties together an object store and one or more TVMs.
// Compilation units are installed as persistent modules: for every function
// the store holds
//
//   kCode     — serialized TVM bytecode (with nested subfunctions),
//   kPtml     — the compact persistent TML tree the back end attaches,
//   kClosure  — the closure record: code OID + the R-value bindings
//               ([identifier, OID] pairs) of the function's free variables,
//   kModule   — the module record mapping export names to closure OIDs.
//
// Cross-module references are OIDs; the VM swizzles them on first call, so
// every library operation in kLibrary-mode code costs an indirect call —
// the §6 situation that local static optimization cannot fix.
//
// ReflectOptimize implements `reflect.optimize(f)`: map PTML back to TML,
// re-establish the R-value bindings of the closure record, collect (via
// transitive reachability) all contributing declarations into one scope,
// run the ordinary TML optimizer across the collapsed abstraction barriers,
// regenerate code and link it into the running program.
//
// Concurrency model (DESIGN.md §9): the universe is read-mostly.  All
// execution-path reads — Lookup, OID resolution, code fetch — go through an
// immutable BindingSnapshot published with an atomic shared_ptr swap
// (RCU-style), so N worker VMs call through the shared binding table
// without taking any lock.  Mutations (module installs, ReflectOptimize,
// SwapCode, store commits, snapshot fault-ins) serialize on one small
// non-recursive writer mutex `mu_`, mutate a private copy of the snapshot,
// and publish it; `binding_gen_` names each semantic binding state so the
// adaptive optimizer can reject installs computed against stale bindings.

#ifndef TML_RUNTIME_UNIVERSE_H_
#define TML_RUNTIME_UNIVERSE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/module.h"
#include "core/optimizer.h"
#include "frontend/compile.h"
#include "store/object_store.h"
#include "store/ptml.h"
#include "store/reflect_cache.h"
#include "telemetry/metrics.h"
#include "vm/codegen.h"
#include "vm/vm.h"

namespace tml::rt {

/// How a unit is installed.
struct InstallOptions {
  /// Attach PTML records to generated code (enables reflection; costs
  /// space — the E2 trade-off).
  bool attach_ptml = true;
  /// Run the *local static* optimizer on each function before code
  /// generation (free variables stay opaque — abstraction barriers hold).
  bool static_optimize = false;
  ir::OptimizerOptions optimizer;
};

struct ReflectStats {
  ir::OptimizerStats optimizer;
  size_t bindings_resolved = 0;  ///< PTML-bearing bindings collapsed
  size_t opaque_bindings = 0;    ///< left as OID leaves
  size_t input_term_size = 0;
  size_t output_term_size = 0;
  // Persistent reflect-cache accounting.  On a hit only the discovery
  // traversal runs: decode, optimize and codegen are skipped, so the
  // optimizer/term-size fields above stay untouched.
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  size_t cache_bytes = 0;  ///< live bytes of the kReflectCache index
  /// Superinstruction slots rewritten by the backend fusion pass (pairs +
  /// triples, across the function and its subfunctions).
  size_t superinstructions_fused = 0;
};

/// A background worker attached to a Universe (the adaptive optimization
/// manager lives behind this interface so the runtime library does not
/// depend on src/adaptive).  The Universe stops and destroys adopted
/// services before tearing down the VMs and their store references.
class BackgroundService {
 public:
  virtual ~BackgroundService() = default;
  virtual void Stop() = 0;
};

/// Counters published by the adaptive optimization subsystem, surfaced
/// through the Universe so operators see the promote/backoff/reject flow
/// without holding a manager handle.
struct AdaptiveCounters {
  uint64_t polls = 0;             ///< profiling cycles run
  uint64_t promotions = 0;        ///< hot closures swapped to optimized code
  uint64_t backoffs = 0;          ///< hot candidates skipped (penalty cap)
  uint64_t stale_rejections = 0;  ///< installs dropped: bindings moved on
  uint64_t reflect_failures = 0;  ///< ReflectOptimize errors on candidates
  uint64_t profile_persists = 0;  ///< kProfile records written
};

/// One live adaptive counter: a per-universe atomic (tests and the public
/// AdaptiveCounters snapshot read this) that also forwards every bump to a
/// process-wide registry counter, so `tyctop` and TelemetrySnapshot() see
/// adaptive activity without a universe handle.
struct AdaptiveCell {
  std::atomic<uint64_t> local{0};
  telemetry::Counter* global = nullptr;  // wired once at Universe creation

  void Add(uint64_t n) {
    local.fetch_add(n, std::memory_order_relaxed);
    if (global != nullptr) global->Add(n);
  }
  uint64_t value() const { return local.load(std::memory_order_relaxed); }
};

/// The live (cross-thread) counter cells behind AdaptiveCounters: the
/// manager's worker thread bumps these while observers snapshot them.
struct AtomicAdaptiveCounters {
  AtomicAdaptiveCounters();  // wires the cells to the "tml.adaptive.*" metrics

  AdaptiveCell polls;
  AdaptiveCell promotions;
  AdaptiveCell backoffs;
  AdaptiveCell stale_rejections;
  AdaptiveCell reflect_failures;
  AdaptiveCell profile_persists;
};

/// The read-mostly published code/binding table: one immutable snapshot of
/// everything the execution path needs — module export tables plus, per
/// published closure OID, the linked code and its capture bindings in
/// `fn->cap_names` order.  Readers load the current snapshot with one
/// atomic shared_ptr load and never take the writer lock; writers copy,
/// mutate and republish under `mu_`.  A snapshot is never mutated after
/// publication.
struct BindingSnapshot {
  /// binding_generation() at publish time (fault-ins republish without a
  /// bump; installs/swaps bump first, then publish).
  uint64_t generation = 0;

  struct Closure {
    const vm::Function* fn = nullptr;
    /// Capture OIDs ordered like fn->cap_names (pre-resolved at publish so
    /// the reader builds a ClosureObj without a by-name search).
    std::vector<Oid> cap_oids;
  };

  /// module name -> (function name -> closure oid)
  std::unordered_map<std::string, std::unordered_map<std::string, Oid>>
      modules;
  /// closure OID -> linked code + captures, for lock-free OID resolution.
  std::unordered_map<Oid, Closure> closures;
};

class Universe : public vm::RuntimeEnv {
 public:
  explicit Universe(store::ObjectStore* store);
  ~Universe() override;

  vm::VM* vm() { return vm_.get(); }
  store::ObjectStore* object_store() { return store_; }

  /// Create an additional worker VM bound to this universe.  Worker VMs
  /// share the published binding table and the store, but own a private
  /// heap, swizzle cache and per-function profile, so each worker thread
  /// executes without touching another worker's state.  The returned VM is
  /// owned by the universe (destroyed in ~Universe) and must only be used
  /// from one thread at a time.  Thread-safe.
  ///
  /// Worker VMs default to batched telemetry publication
  /// (VMOptions::telemetry_batch_steps) so the registry's shared counters
  /// stay off the multi-thread hot path.
  vm::VM* AddWorkerVm();
  vm::VM* AddWorkerVm(const vm::VMOptions& opts);

  /// Merged per-function execution profile across the primary VM and every
  /// worker VM (the adaptive optimizer feeds on this).  Thread-safe.
  std::vector<vm::FnSample> SnapshotProfile() const;

  /// Instantaneous exec status of the primary and every worker VM — the
  /// sampling profiler's input (one relaxed-load pair per VM; idle VMs
  /// report fn == nullptr).  Thread-safe.
  std::vector<vm::VM::ExecStatus> SampleExecStatus() const;

  /// Profile-provider seam: the VmSampler (src/adaptive) registers a
  /// callback rendering its hot-function table as JSON; the server's
  /// PROFILE command and the `reflect.profile` host primitive read it
  /// through ProfileJson(), so the runtime library never depends on
  /// src/adaptive.  The provider must clear itself (nullptr) before its
  /// owner is destroyed; adopted services are stopped first in ~Universe,
  /// which makes that ordering automatic for adopted samplers.
  void SetProfileProvider(std::function<std::string()> provider);
  /// Rendered hot-function profile JSON ("{}" when no sampler runs).
  std::string ProfileJson() const;

  /// Install the standard library module ("stdlib") used by kLibrary-mode
  /// code; idempotent.
  Status InstallStdlib();

  /// Re-attach the modules persisted in the store (roots named
  /// "module:<name>") — the open-database restart path: code, PTML and
  /// closure records all come back from disk.
  Status LoadPersistedModules();

  /// Compile-and-install TL source as module `name`.  Free names resolve
  /// against earlier functions of the same unit (including self/mutual
  /// recursion), previously installed modules, and stdlib.
  Status InstallSource(const std::string& name, std::string_view source,
                       fe::BindingMode binding,
                       const InstallOptions& opts = {});

  /// Install an already-compiled unit.
  Status InstallUnit(const std::string& name, const fe::CompiledUnit& unit,
                     const InstallOptions& opts = {});

  /// Closure OID of `module.function`.  Lock-free: reads the published
  /// snapshot, so it is safe (and cheap) to call from any worker thread
  /// while installs run.
  Result<Oid> Lookup(const std::string& module,
                     const std::string& function) const;

  /// Call a persistent function by closure OID (on the primary VM; worker
  /// threads call their own AddWorkerVm() instance directly).
  Result<vm::RunResult> Call(Oid closure_oid,
                             std::span<const vm::Value> args);

  /// Call under a per-run step budget: a program exceeding `step_budget`
  /// instructions aborts with an OutOfRange status instead of running
  /// forever — the guard that lets a server bound hostile client programs
  /// (0 = unlimited).  The primary VM's configured budget is restored
  /// afterwards.
  Result<vm::RunResult> Call(Oid closure_oid, std::span<const vm::Value> args,
                             uint64_t step_budget);

  /// reflect.optimize: build a globally bound TML term for the closure,
  /// optimize across abstraction barriers, regenerate code, and return a
  /// runnable closure value (also persisted; the returned OID can be
  /// Call()ed like any other function).
  ///
  /// Results are memoized in a persistent cache keyed by a fingerprint of
  /// (PTML bytes, resolved R-value binding OIDs in first-occurrence order,
  /// optimizer options): a repeated call — including one in a fresh
  /// Universe after the store is reopened — links the previously
  /// regenerated code instead of re-decoding, re-optimizing and
  /// re-generating.  Changing any binding OID, any PTML record, or the
  /// options changes the fingerprint, so stale entries are never served.
  Result<Oid> ReflectOptimize(Oid closure_oid,
                              const ir::OptimizerOptions& opts = {},
                              ReflectStats* stats = nullptr);

  /// The reflectively optimized TML term for a closure, before codegen
  /// (used by examples/tests to show the §4.1 pipeline).
  Result<const ir::Abstraction*> ReflectTerm(Oid closure_oid,
                                             ir::Module* out_module,
                                             ReflectStats* stats = nullptr);

  /// Store a relation payload, returning its OID (see query/relation.h for
  /// the payload format).
  Result<Oid> StoreRelationBytes(std::string_view bytes);

  // ---- adaptive optimization support ----
  //
  // The pieces the AdaptiveManager (src/adaptive) builds on: a generation
  // counter over closure bindings, an atomic code swap, thread-safe store
  // access for background workers, and the Function* -> closure-OID index
  // that maps VM profile samples back to persistent identities.

  /// Monotone counter bumped whenever closure bindings change (module
  /// installation, code swap).  A worker snapshots it before optimizing and
  /// passes it to SwapCode, which rejects the install if bindings moved in
  /// between — the guard against installing results computed against stale
  /// bindings.
  uint64_t binding_generation() const {
    return binding_gen_.load(std::memory_order_acquire);
  }

  /// Atomically install the code of `optimized_closure` as the code of
  /// `target_closure`: the target's closure record is rewritten to point at
  /// the regenerated code record, the published snapshot entry is replaced,
  /// and every VM's swizzle cache entry for the target is invalidated, so
  /// in-flight programs pick up the optimized version at their next call
  /// through the OID — no restart.  Returns false (and installs nothing)
  /// when binding_generation() no longer equals `expected_generation`.
  Result<bool> SwapCode(Oid target_closure, Oid optimized_closure,
                        uint64_t expected_generation);

  /// Drop the published snapshot entry and every VM's cached swizzle for
  /// `oid` after out-of-band surgery on its closure record (store tools,
  /// salvage, tests): the next resolution re-reads the record from the
  /// store and republishes it.  Bumps the binding generation — the
  /// binding's meaning changed, so in-flight optimizations are stale.
  void InvalidateBinding(Oid oid);

  /// Thread-safe root-anchored record access for background services
  /// (e.g. the kProfile hotness record).  PutRootRecord allocates on first
  /// use and overwrites thereafter, returning the record OID.
  Result<Oid> PutRootRecord(const std::string& root, store::ObjType type,
                            std::string_view bytes);
  Result<store::StoredObject> GetRootRecord(const std::string& root) const;
  /// Commit the store under the writer lock.
  Status CommitStore();

  /// Snapshot of the Function* -> closure OID mapping for every function
  /// this universe has linked or installed (profile attribution).
  std::unordered_map<const vm::Function*, Oid> FunctionClosureIndex() const;

  /// Current code OID of a closure record.
  Result<Oid> ClosureCodeOid(Oid closure_oid) const;

  /// Adopt a background worker; it is stopped and destroyed first in
  /// ~Universe, while the store and VMs are still alive.
  void AdoptService(std::unique_ptr<BackgroundService> service);

  /// Stop and destroy every adopted background service now (idempotent;
  /// also runs in ~Universe).  The server's graceful-shutdown path calls
  /// this before its final CommitStore so no background promotion can be
  /// mid-flight while the store closes.
  void StopServices();

  /// Live counter cells for the manager; consistent-enough snapshot for
  /// everyone else.
  AtomicAdaptiveCounters* adaptive_counters_raw() {
    return &adaptive_counters_;
  }
  AdaptiveCounters adaptive_counters() const;

  // ---- E2 accounting ----
  struct SizeReport {
    size_t code_bytes = 0;
    size_t ptml_bytes = 0;
    size_t closure_bytes = 0;
  };
  SizeReport Sizes() const;

  // ---- telemetry export ----

  /// One coherent view of the whole observability surface: the global
  /// metrics registry plus this universe's adaptive counters and store
  /// footprint.  Safe to call from any thread while the mutators and the
  /// adaptive worker run.
  struct TelemetryReport {
    std::vector<telemetry::MetricSample> metrics;
    AdaptiveCounters adaptive;
    SizeReport sizes;
    uint64_t trace_events_dropped = 0;

    std::string ToText() const;
    std::string ToJson() const;
  };
  TelemetryReport TelemetrySnapshot() const;

  // vm::RuntimeEnv:
  //
  // The hot path: a published closure OID resolves from the snapshot with
  // no lock.  Unpublished OIDs (persisted closures not yet faulted in,
  // relations) fall back to the writer lock; faulted-in closures are
  // republished so every later resolution — from any VM — is lock-free.
  Result<vm::Value> ResolveOid(Oid oid, vm::VM* vm) override;

 private:
  struct ClosureRecord {
    Oid code_oid = kNullOid;
    std::vector<std::pair<std::string, Oid>> bindings;
  };

  // ---- writer-side helpers (call with mu_ held; `mu_` is NOT recursive,
  // so none of these may call a locking public entry point) ----

  Status InstallStdlibLocked();
  Status InstallUnitLocked(const std::string& name,
                           const fe::CompiledUnit& unit,
                           const InstallOptions& opts);
  Result<ClosureRecord> LoadClosureRecordLocked(Oid oid) const;
  std::string EncodeClosureRecord(const ClosureRecord& rec) const;
  Result<const vm::Function*> LoadCodeLocked(Oid code_oid);
  Result<Oid> ResolveNameLocked(const std::string& name,
                                const std::unordered_map<std::string, Oid>&
                                    unit_names) const;
  Result<vm::Value> ResolveOidLocked(Oid oid, vm::VM* vm);

  /// Link `rec` into a snapshot closure entry: load its code and resolve
  /// the capture bindings into fn->cap_names order (also records the
  /// Function* -> OID attribution).
  Result<BindingSnapshot::Closure> LinkClosureLocked(Oid oid,
                                                     const ClosureRecord& rec);

  /// Copy-on-write of the published snapshot: mutate the returned copy,
  /// then PublishLocked() it.  Bump binding_gen_ BEFORE publishing when the
  /// change is semantic (install/swap); fault-ins publish without a bump.
  std::shared_ptr<BindingSnapshot> CloneSnapshotLocked() const;
  void PublishLocked(std::shared_ptr<BindingSnapshot> next);

  /// Current snapshot (readers; one atomic load, never null).
  std::shared_ptr<const BindingSnapshot> CurrentSnapshot() const {
    return published_.load(std::memory_order_acquire);
  }

  /// Build a heap closure value on `vm` from a published snapshot entry.
  static vm::Value MakeClosureValue(const BindingSnapshot::Closure& c,
                                    vm::VM* vm);

  /// Register the universe's host functions (`reflect.stats`, ...) on a VM.
  void RegisterHostsOn(vm::VM* vm);

  /// Drop the swizzle-cache entry for `oid` on the primary and every
  /// worker VM (call after a publish so re-resolution sees the new table).
  void InvalidateSwizzleAll(Oid oid);

  // Reflection helpers.
  //
  // Discovery (the §4.1 transitive-reachability walk) is separated from
  // term building so that ReflectOptimize can fingerprint the raw inputs —
  // PTML bytes plus closure-record bindings — and serve a cache hit
  // without ever decoding PTML or running the optimizer.
  struct Discovered {
    Oid oid = kNullOid;
    ClosureRecord rec;
    const vm::Function* fn = nullptr;  // deserialized code (ptml_oid != 0)
    std::string ptml_bytes;            // raw PTML record, not yet decoded
  };
  Status DiscoverReflectClosuresLocked(Oid root, ReflectStats* stats,
                                       std::vector<Discovered>* out);
  uint64_t FingerprintReflect(const std::vector<Discovered>& discovered,
                              const ir::OptimizerOptions& opts) const;
  Result<const ir::Abstraction*> BuildReflectTermLocked(
      ir::Module* m, Oid root, const std::vector<Discovered>& discovered,
      ReflectStats* stats);
  Status EnsureReflectCacheLoadedLocked();
  Status PersistReflectCacheLocked();

  // The writer-side mutex.  Serializes every store_/code_cache_/module-
  // table MUTATION (installs, reflect-optimize, code swaps, store commits,
  // root records) and the snapshot fault-in slow path.  Deliberately
  // non-recursive: public entry points lock exactly once and compose
  // through the *Locked helpers, so no re-entrancy path can hide here.
  // The execution path (Lookup / published-OID resolution / Call) never
  // takes it — readers go through the published BindingSnapshot.
  mutable std::mutex mu_;

  store::ObjectStore* store_;
  std::unique_ptr<vm::VM> vm_;
  /// Additional per-worker VMs (AddWorkerVm); guarded by vms_mu_, which
  /// nests inside mu_ (SwapCode broadcasts invalidations) and is also
  /// taken alone by SnapshotProfile/AddWorkerVm.
  mutable std::mutex vms_mu_;
  std::vector<std::unique_ptr<vm::VM>> worker_vms_;

  vm::CodeUnit code_unit_;
  std::unordered_map<Oid, const vm::Function*> code_cache_;
  /// Function* -> closure OID, for mapping VM profile samples back to
  /// persistent identities (filled wherever code is linked to a closure).
  std::unordered_map<const vm::Function*, Oid> fn_closures_;
  /// Keeps reflected IR modules alive (their terms back compiled code
  /// metadata such as names).
  std::vector<std::unique_ptr<ir::Module>> reflected_modules_;
  /// module name -> (function name -> closure oid); the writer-side master
  /// copy mirrored into every published snapshot.
  std::unordered_map<std::string,
                     std::unordered_map<std::string, Oid>>
      modules_;
  int reflect_counter_ = 0;
  /// fingerprint -> regenerated result; mirrored in the store as a single
  /// kReflectCache index record under the "reflect-cache" root (loaded
  /// lazily on the first ReflectOptimize).
  std::unordered_map<uint64_t, store::ReflectCacheEntry> reflect_cache_;
  Oid reflect_cache_oid_ = kNullOid;
  bool reflect_cache_loaded_ = false;

  /// The published read-mostly table.  Writers store under mu_; readers
  /// load without any lock.  Never null after construction.
  std::atomic<std::shared_ptr<const BindingSnapshot>> published_;

  std::atomic<uint64_t> binding_gen_{0};
  AtomicAdaptiveCounters adaptive_counters_;
  std::vector<std::unique_ptr<BackgroundService>> services_;

  /// Profile provider (SetProfileProvider); guarded by its own mutex so
  /// worker threads can render PROFILE while the sampler re-registers.
  mutable std::mutex profile_provider_mu_;
  std::function<std::string()> profile_provider_;
};

}  // namespace tml::rt

#endif  // TML_RUNTIME_UNIVERSE_H_
