// TML abstract syntax (paper §2.2, Fig. 1).
//
// Exactly six node kinds represent every program and query:
//
//   val ::= lit | oid | var | prim | abs
//   abs ::= λ(v1 .. vn) app
//   app ::= (val0 val1 .. valn)
//
// Nodes are immutable after construction and live in their ir::Module's
// arena; rewriting is functional (path copying) with unchanged subterms
// shared.  Variable nodes double as binder identities: the unique-binding
// rule (§2.2 constraint 4) means each Variable object is bound by at most
// one abstraction, and every occurrence of that variable is the same
// pointer.  Substitution is therefore pointer substitution and α-collision
// cannot arise.

#ifndef TML_CORE_NODE_H_
#define TML_CORE_NODE_H_

#include <cassert>
#include <cstdint>
#include <span>
#include <string_view>

#include "core/oid.h"
#include "support/interner.h"

namespace tml::ir {

class Primitive;

enum class NodeKind : uint8_t {
  kLiteral,
  kOid,
  kVariable,
  kPrimitive,
  kAbstraction,
  kApplication,
};

/// Root of the (six-member) node hierarchy.
class Node {
 public:
  NodeKind kind() const { return kind_; }

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

 protected:
  explicit Node(NodeKind kind) : kind_(kind) {}

 private:
  const NodeKind kind_;
};

/// Anything that may appear as an operand of an application.
class Value : public Node {
 protected:
  using Node::Node;
};

/// Scalar literal constants.
enum class LitKind : uint8_t { kNil, kBool, kInt, kChar, kReal, kString };

class Literal final : public Value {
 public:
  static constexpr NodeKind kKind = NodeKind::kLiteral;

  LitKind lit_kind() const { return lit_kind_; }

  bool bool_value() const {
    assert(lit_kind_ == LitKind::kBool);
    return b_;
  }
  int64_t int_value() const {
    assert(lit_kind_ == LitKind::kInt);
    return i_;
  }
  uint8_t char_value() const {
    assert(lit_kind_ == LitKind::kChar);
    return ch_;
  }
  double real_value() const {
    assert(lit_kind_ == LitKind::kReal);
    return r_;
  }
  std::string_view string_value() const {
    assert(lit_kind_ == LitKind::kString);
    return {str_, str_len_};
  }

 private:
  friend class Module;

  Literal() : Value(kKind), lit_kind_(LitKind::kNil), i_(0) {}
  explicit Literal(bool b) : Value(kKind), lit_kind_(LitKind::kBool), b_(b) {}
  explicit Literal(int64_t i)
      : Value(kKind), lit_kind_(LitKind::kInt), i_(i) {}
  explicit Literal(uint8_t ch)
      : Value(kKind), lit_kind_(LitKind::kChar), ch_(ch) {}
  explicit Literal(double r)
      : Value(kKind), lit_kind_(LitKind::kReal), r_(r) {}
  Literal(const char* str, size_t len)
      : Value(kKind), lit_kind_(LitKind::kString), str_(str), str_len_(len) {}

  LitKind lit_kind_;
  union {
    bool b_;
    int64_t i_;
    uint8_t ch_;
    double r_;
    const char* str_;
  };
  size_t str_len_ = 0;
};

/// True when both literals denote the same scalar (identity for `==` tags).
bool LiteralEquals(const Literal& a, const Literal& b);

/// Reference to a complex object in the persistent store (paper §2.2).
class OidRef final : public Value {
 public:
  static constexpr NodeKind kKind = NodeKind::kOid;

  Oid oid() const { return oid_; }

 private:
  friend class Module;
  explicit OidRef(Oid oid) : Value(kKind), oid_(oid) {}

  Oid oid_;
};

/// Sort of a variable: continuations are second class (§2.2 constraint 3).
enum class VarSort : uint8_t { kValue, kCont };

/// A variable.  The node *is* the binder identity (unique-binding rule); all
/// occurrences share the pointer.  `uid` is the α-conversion suffix the
/// paper prints (`complex_6`, `t_12`).
class Variable final : public Value {
 public:
  static constexpr NodeKind kKind = NodeKind::kVariable;

  Symbol name() const { return name_; }
  uint32_t uid() const { return uid_; }
  VarSort sort() const { return sort_; }
  bool is_cont() const { return sort_ == VarSort::kCont; }

 private:
  friend class Module;
  Variable(Symbol name, uint32_t uid, VarSort sort)
      : Value(kKind), name_(name), uid_(uid), sort_(sort) {}

  Symbol name_;
  uint32_t uid_;
  VarSort sort_;
};

/// Reference to a primitive procedure (§2.3).
class PrimRef final : public Value {
 public:
  static constexpr NodeKind kKind = NodeKind::kPrimitive;

  const Primitive& prim() const { return *prim_; }

 private:
  friend class Module;
  explicit PrimRef(const Primitive* prim)
      : Value(kKind), prim_(prim) {}

  const Primitive* prim_;
};

class Application;

/// λ(v1 .. vn) app.  Parameters are value variables followed by continuation
/// variables (§2.2 well-formedness keeps the order fixed).  The printed form
/// is `cont(..)` when num_cont_params() == 0, else `proc(..)` (§2.2).
class Abstraction final : public Value {
 public:
  static constexpr NodeKind kKind = NodeKind::kAbstraction;

  std::span<Variable* const> params() const {
    return {params_, num_params_};
  }
  size_t num_params() const { return num_params_; }
  Variable* param(size_t i) const {
    assert(i < num_params_);
    return params_[i];
  }
  /// Count of continuation-sort parameters (trailing for user-level procs;
  /// the Y combinator's argument also has a leading one).
  size_t num_cont_params() const { return num_cont_params_; }
  size_t num_value_params() const { return num_params_ - num_cont_params_; }
  bool is_cont() const { return num_cont_params_ == 0; }

  const Application* body() const { return body_; }

 private:
  friend class Module;
  Abstraction(Variable** params, uint32_t num_params, uint32_t num_cont_params,
              const Application* body)
      : Value(kKind),
        params_(params),
        num_params_(num_params),
        num_cont_params_(num_cont_params),
        body_(body) {}

  Variable** params_;
  uint32_t num_params_;
  uint32_t num_cont_params_;
  const Application* body_;
};

/// (val0 val1 .. valn) — the single control construct of CPS: a generalized
/// goto with parameter passing (Steele).
class Application final : public Node {
 public:
  static constexpr NodeKind kKind = NodeKind::kApplication;

  const Value* callee() const { return elems_[0]; }
  std::span<const Value* const> args() const {
    return {elems_ + 1, num_elems_ - 1};
  }
  size_t num_args() const { return num_elems_ - 1; }
  const Value* arg(size_t i) const {
    assert(i + 1 < num_elems_);
    return elems_[i + 1];
  }

 private:
  friend class Module;
  Application(const Value** elems, uint32_t num_elems)
      : Node(kKind), elems_(elems), num_elems_(num_elems) {}

  const Value** elems_;  // [callee, arg1, .., argn]
  uint32_t num_elems_;
};

/// LLVM-style downcast helpers (no RTTI).
template <typename T>
bool Isa(const Node* n) {
  return n != nullptr && n->kind() == T::kKind;
}

template <typename T>
const T* DynCast(const Node* n) {
  return Isa<T>(n) ? static_cast<const T*>(n) : nullptr;
}

template <typename T>
const T* Cast(const Node* n) {
  assert(Isa<T>(n));
  return static_cast<const T*>(n);
}

}  // namespace tml::ir

#endif  // TML_CORE_NODE_H_
