#include "core/module.h"

#include <algorithm>
#include <cassert>

#include "core/primitive.h"

namespace tml::ir {

bool LiteralEquals(const Literal& a, const Literal& b) {
  if (a.lit_kind() != b.lit_kind()) return false;
  switch (a.lit_kind()) {
    case LitKind::kNil:
      return true;
    case LitKind::kBool:
      return a.bool_value() == b.bool_value();
    case LitKind::kInt:
      return a.int_value() == b.int_value();
    case LitKind::kChar:
      return a.char_value() == b.char_value();
    case LitKind::kReal:
      return a.real_value() == b.real_value();
    case LitKind::kString:
      return a.string_value() == b.string_value();
  }
  return false;
}

const Literal* Module::CloneLit(const Literal& lit) {
  switch (lit.lit_kind()) {
    case LitKind::kNil:
      return NilLit();
    case LitKind::kBool:
      return BoolLit(lit.bool_value());
    case LitKind::kInt:
      return IntLit(lit.int_value());
    case LitKind::kChar:
      return CharLit(lit.char_value());
    case LitKind::kReal:
      return RealLit(lit.real_value());
    case LitKind::kString:
      return StringLit(lit.string_value());
  }
  return NilLit();
}

const Abstraction* Module::Abs(std::span<Variable* const> params,
                               const Application* body) {
  assert(body != nullptr);
  uint32_t n = static_cast<uint32_t>(params.size());
  Variable** stored = static_cast<Variable**>(
      arena_.Allocate(sizeof(Variable*) * (n ? n : 1), alignof(Variable*)));
  uint32_t num_cont = 0;
  for (uint32_t i = 0; i < n; ++i) {
    stored[i] = params[i];
    if (params[i]->is_cont()) ++num_cont;
    // NOTE: user-level procs keep continuation params trailing (ce cc, §2.2
    // constraint 5; checked by the validator), but the Y combinator's
    // argument is λ(c0 v1..vn c) with a *leading* continuation parameter, so
    // no ordering is enforced here.
  }
  return NewNode<Abstraction>(stored, n, num_cont, body);
}

const Application* Module::App(const Value* callee,
                               std::span<const Value* const> args) {
  assert(callee != nullptr);
  uint32_t n = static_cast<uint32_t>(args.size()) + 1;
  const Value** elems = static_cast<const Value**>(
      arena_.Allocate(sizeof(const Value*) * n, alignof(const Value*)));
  elems[0] = callee;
  for (uint32_t i = 1; i < n; ++i) {
    assert(args[i - 1] != nullptr);
    elems[i] = args[i - 1];
  }
  return NewNode<Application>(elems, n);
}

const Application* Module::AppWith(const Application& app,
                                   std::vector<const Value*> elems) {
  assert(!elems.empty());
  uint32_t n = static_cast<uint32_t>(elems.size());
  const Value** stored = static_cast<const Value**>(
      arena_.Allocate(sizeof(const Value*) * n, alignof(const Value*)));
  std::copy(elems.begin(), elems.end(), stored);
  (void)app;
  return NewNode<Application>(stored, n);
}

namespace {

const Variable* LookupVar(
    const std::vector<std::pair<const Variable*, Variable*>>& map,
    const Variable* v) {
  for (auto it = map.rbegin(); it != map.rend(); ++it) {
    if (it->first == v) return it->second;
  }
  return nullptr;
}

}  // namespace

const Value* Module::CloneValue(
    const Value* v, std::vector<std::pair<const Variable*, Variable*>>* map) {
  switch (v->kind()) {
    case NodeKind::kLiteral:
    case NodeKind::kOid:
    case NodeKind::kPrimitive:
      return v;  // leaves are freely shareable
    case NodeKind::kVariable: {
      const Variable* var = Cast<Variable>(v);
      const Variable* repl = LookupVar(*map, var);
      return repl != nullptr ? repl : v;  // free vars stay shared
    }
    case NodeKind::kAbstraction: {
      const Abstraction* abs = Cast<Abstraction>(v);
      size_t base = map->size();
      std::vector<Variable*> fresh;
      fresh.reserve(abs->num_params());
      for (Variable* p : abs->params()) {
        Variable* np = FreshCopy(*p);
        fresh.push_back(np);
        map->emplace_back(p, np);
      }
      const Application* body = CloneApp(abs->body(), map);
      map->resize(base);
      return Abs(fresh, body);
    }
    case NodeKind::kApplication:
      assert(false && "application in value position");
      return v;
  }
  return v;
}

const Application* Module::CloneApp(
    const Application* app,
    std::vector<std::pair<const Variable*, Variable*>>* map) {
  std::vector<const Value*> elems;
  elems.reserve(app->num_args() + 1);
  elems.push_back(CloneValue(app->callee(), map));
  for (const Value* a : app->args()) elems.push_back(CloneValue(a, map));
  return AppWith(*app, std::move(elems));
}

const Abstraction* Module::AlphaClone(const Abstraction& abs) {
  std::vector<std::pair<const Variable*, Variable*>> map;
  return Cast<Abstraction>(CloneValue(&abs, &map));
}

const Value* Module::Import(
    const Value& v,
    std::vector<std::pair<const Variable*, const Value*>>* import_map) {
  switch (v.kind()) {
    case NodeKind::kLiteral:
      return CloneLit(*Cast<Literal>(&v));
    case NodeKind::kOid:
      return OidVal(Cast<OidRef>(&v)->oid());
    case NodeKind::kPrimitive:
      return Prim(&Cast<PrimRef>(&v)->prim());
    case NodeKind::kVariable: {
      if (import_map != nullptr) {
        for (auto it = import_map->rbegin(); it != import_map->rend(); ++it) {
          if (it->first == &v) return it->second;
        }
      }
      assert(false && "unmapped free variable during Import");
      return NilLit();
    }
    case NodeKind::kAbstraction: {
      const Abstraction* abs = Cast<Abstraction>(&v);
      std::vector<std::pair<const Variable*, const Value*>> local;
      if (import_map != nullptr) local = *import_map;
      std::vector<Variable*> fresh;
      fresh.reserve(abs->num_params());
      for (Variable* p : abs->params()) {
        Variable* np = FreshCopy(*p);
        fresh.push_back(np);
        local.emplace_back(p, np);
      }
      std::vector<const Value*> elems;
      const Application* b = abs->body();
      elems.reserve(b->num_args() + 1);
      elems.push_back(Import(*b->callee(), &local));
      for (const Value* a : b->args()) elems.push_back(Import(*a, &local));
      return Abs(fresh, AppWith(*b, std::move(elems)));
    }
    case NodeKind::kApplication:
      assert(false && "application in value position");
      return NilLit();
  }
  return NilLit();
}

size_t ValueSize(const Value* v) {
  if (Isa<Abstraction>(v)) {
    return 1 + TermSize(Cast<Abstraction>(v)->body());
  }
  return 1;
}

size_t TermSize(const Application* app) {
  size_t n = 1 + ValueSize(app->callee());
  for (const Value* a : app->args()) n += ValueSize(a);
  return n;
}

}  // namespace tml::ir
