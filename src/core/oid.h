// Object identifiers (OIDs) into the persistent object store.
//
// TML terms may contain OID leaves denoting arbitrarily complex objects
// (tables, indices, closures, modules) in the store (paper §2.1/§2.2).

#ifndef TML_CORE_OID_H_
#define TML_CORE_OID_H_

#include <cstdint>

namespace tml {

/// A stable object identifier.  0 is reserved as the null OID.
using Oid = uint64_t;

inline constexpr Oid kNullOid = 0;

}  // namespace tml

#endif  // TML_CORE_OID_H_
