// The TML expansion pass (paper §3): β-expansion / procedure inlining.
//
// The reduction pass substitutes an abstraction only when its binding is
// referenced exactly once (no code growth).  The expansion pass handles the
// remaining cases: a call site (f a1..an ..) whose callee f is statically
// bound to an abstraction — via an enclosing λ binding or a Y fixpoint —
// may be replaced by an α-renamed copy of that abstraction, turning the
// call into a β-redex for the next reduction pass.  This is procedure
// inlining in compiler terms and view expansion in database terms (§3);
// applied to Y bindings it performs loop unrolling.
//
// The decision is driven by a heuristic cost model similar to Appel's
// [Appel 1992]: the body cost (estimated abstract-machine instructions via
// Primitive::CostEstimate) is weighed against the expected savings from
// arguments that are compile-time constants or abstractions.

#ifndef TML_CORE_EXPAND_H_
#define TML_CORE_EXPAND_H_

#include <cstdint>
#include <string>

#include "core/module.h"
#include "core/node.h"

namespace tml::ir {

struct ExpandOptions {
  /// Inline unconditionally when the body costs no more than this.
  int always_inline_cost = 12;
  /// Base budget: inline when body_cost <= budget + savings.
  int budget = 24;
  /// Cost credit per literal/abstraction/OID argument at the call site.
  int savings_per_static_arg = 8;
  /// Every round of reduction/expansion subtracts this from the budget —
  /// the accumulated penalty of §3 that guarantees termination.
  int round_penalty = 8;
  /// Hard cap on inlined copies per pass (defense in depth).
  int max_expansions_per_pass = 256;
};

struct ExpandStats {
  uint64_t inlined = 0;
  uint64_t considered = 0;
  uint64_t rejected_cost = 0;
  std::string ToString() const;
  ExpandStats& operator+=(const ExpandStats& o);
};

/// One expansion sweep over `prog` with the given accumulated `penalty`.
/// Returns the (possibly unchanged) program.
const Abstraction* Expand(Module* m, const Abstraction* prog,
                          const ExpandOptions& opts, int penalty,
                          ExpandStats* stats = nullptr);

/// Estimated abstract-machine cost of executing a term once (uses
/// Primitive::CostEstimate; plain applications cost their argument count).
int EstimateCost(const Application* app);
int EstimateAbsCost(const Abstraction* abs);

}  // namespace tml::ir

#endif  // TML_CORE_EXPAND_H_
