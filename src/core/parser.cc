#include "core/parser.h"

#include <cctype>
#include <cstdlib>
#include <string>

namespace tml::ir {

namespace {

enum class Tok : uint8_t {
  kLParen,
  kRParen,
  kSlash,
  kIdent,
  kInt,
  kReal,
  kChar,
  kString,
  kOid,
  kEnd,
};

struct Token {
  Tok kind;
  std::string text;   // ident / string payload
  int64_t int_val = 0;
  double real_val = 0;
  uint8_t char_val = 0;
  uint64_t oid_val = 0;
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<Token> Next() {
    SkipWs();
    Token t;
    t.pos = pos_;
    if (pos_ >= text_.size()) {
      t.kind = Tok::kEnd;
      return t;
    }
    char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      t.kind = Tok::kLParen;
      return t;
    }
    if (c == ')') {
      ++pos_;
      t.kind = Tok::kRParen;
      return t;
    }
    if (c == '\'') {
      // character literal 'x'
      if (pos_ + 2 >= text_.size() || text_[pos_ + 2] != '\'') {
        return Err("bad character literal");
      }
      t.kind = Tok::kChar;
      t.char_val = static_cast<uint8_t>(text_[pos_ + 1]);
      pos_ += 3;
      return t;
    }
    if (c == '"') {
      ++pos_;
      std::string s;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
        s.push_back(text_[pos_++]);
      }
      if (pos_ >= text_.size()) return Err("unterminated string literal");
      ++pos_;  // closing quote
      t.kind = Tok::kString;
      t.text = std::move(s);
      return t;
    }
    // number?
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        ((c == '-' || c == '+') && pos_ + 1 < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
      size_t start = pos_;
      if (c == '-' || c == '+') ++pos_;
      bool is_real = false;
      while (pos_ < text_.size()) {
        char d = text_[pos_];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++pos_;
        } else if (d == '.' || d == 'e' || d == 'E') {
          is_real = true;
          ++pos_;
          if (pos_ < text_.size() &&
              (text_[pos_] == '-' || text_[pos_] == '+')) {
            ++pos_;
          }
        } else {
          break;
        }
      }
      std::string num(text_.substr(start, pos_ - start));
      if (is_real) {
        t.kind = Tok::kReal;
        t.real_val = std::strtod(num.c_str(), nullptr);
      } else {
        t.kind = Tok::kInt;
        t.int_val = std::strtoll(num.c_str(), nullptr, 10);
      }
      return t;
    }
    // identifier (or <oid ...>)
    size_t start = pos_;
    while (pos_ < text_.size() && !IsDelim(text_[pos_])) ++pos_;
    std::string word(text_.substr(start, pos_ - start));
    if (word == "/") {
      t.kind = Tok::kSlash;
      return t;
    }
    if (word == "<oid") {
      SkipWs();
      size_t hstart = pos_;
      while (pos_ < text_.size() && text_[pos_] != '>') ++pos_;
      if (pos_ >= text_.size()) return Err("unterminated <oid ...>");
      std::string hex(text_.substr(hstart, pos_ - hstart));
      ++pos_;  // '>'
      t.kind = Tok::kOid;
      t.oid_val = std::strtoull(hex.c_str(), nullptr, 0);
      return t;
    }
    if (word.empty()) return Err("unexpected character");
    t.kind = Tok::kIdent;
    t.text = std::move(word);
    return t;
  }

 private:
  static bool IsDelim(char c) {
    return c == '(' || c == ')' || c == '"' || c == ';' ||
           std::isspace(static_cast<unsigned char>(c));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == ';') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Status Err(const std::string& msg) {
    return Status::Invalid("TML parse error at byte " + std::to_string(pos_) +
                           ": " + msg);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

class Parser {
 public:
  Parser(Module* m, const PrimitiveRegistry& prims, std::string_view text,
         const ParseOptions& opts)
      : m_(m), prims_(prims), lexer_(text), opts_(opts) {}

  Status Init() { return Advance(); }

  Result<const Value*> ParseValue() {
    switch (cur_.kind) {
      case Tok::kInt: {
        const Value* v = m_->IntLit(cur_.int_val);
        TML_RETURN_NOT_OK(Advance());
        return v;
      }
      case Tok::kReal: {
        const Value* v = m_->RealLit(cur_.real_val);
        TML_RETURN_NOT_OK(Advance());
        return v;
      }
      case Tok::kChar: {
        const Value* v = m_->CharLit(cur_.char_val);
        TML_RETURN_NOT_OK(Advance());
        return v;
      }
      case Tok::kString: {
        const Value* v = m_->StringLit(cur_.text);
        TML_RETURN_NOT_OK(Advance());
        return v;
      }
      case Tok::kOid: {
        const Value* v = m_->OidVal(cur_.oid_val);
        TML_RETURN_NOT_OK(Advance());
        return v;
      }
      case Tok::kIdent:
        return ParseIdentValue();
      case Tok::kSlash: {
        // '/' is only a separator inside parameter lists; as a value it is
        // the integer-division primitive.
        cur_.kind = Tok::kIdent;
        cur_.text = "/";
        return ParseIdentValue();
      }
      case Tok::kLParen: {
        // A parenthesized value can only be an abstraction: `(cont (i) app)`
        // — CPS forbids nested applications as operands.
        TML_RETURN_NOT_OK(Advance());
        if (cur_.kind != Tok::kIdent ||
            (cur_.text != "cont" && cur_.text != "proc" &&
             cur_.text != "lambda" && cur_.text != "λ")) {
          return Status::Invalid(
              "TML parse error at byte " + std::to_string(cur_.pos) +
              ": parenthesized operand must be an abstraction "
              "(CPS forbids nested applications)");
        }
        std::string kw = cur_.text;  // copy: ParseAbs advances past cur_
        TML_ASSIGN_OR_RETURN(const Value* abs, ParseAbs(kw));
        if (cur_.kind != Tok::kRParen) {
          return Status::Invalid("TML parse error at byte " +
                                 std::to_string(cur_.pos) +
                                 ": expected ')' after abstraction");
        }
        TML_RETURN_NOT_OK(Advance());
        return abs;
      }
      default:
        return Status::Invalid("TML parse error at byte " +
                               std::to_string(cur_.pos) +
                               ": expected a value");
    }
  }

  Result<const Application*> ParseApp() {
    if (cur_.kind != Tok::kLParen) {
      return Status::Invalid("TML parse error at byte " +
                             std::to_string(cur_.pos) + ": expected '('");
    }
    TML_RETURN_NOT_OK(Advance());
    std::vector<const Value*> elems;
    while (cur_.kind != Tok::kRParen) {
      if (cur_.kind == Tok::kEnd) {
        return Status::Invalid("TML parse error: unterminated application");
      }
      TML_ASSIGN_OR_RETURN(const Value* v, ParseValue());
      elems.push_back(v);
    }
    TML_RETURN_NOT_OK(Advance());  // ')'
    if (elems.empty()) {
      return Status::Invalid("TML parse error: empty application");
    }
    const Value* callee = elems[0];
    elems.erase(elems.begin());
    return m_->App(callee, std::span<const Value* const>(elems.data(),
                                                         elems.size()));
  }

  Status ExpectEnd() {
    if (cur_.kind != Tok::kEnd) {
      return Status::Invalid("TML parse error: trailing input at byte " +
                             std::to_string(cur_.pos));
    }
    return Status::OK();
  }

  std::vector<Variable*> TakeFreeVars() { return std::move(free_vars_); }

 private:
  Result<const Value*> ParseIdentValue() {
    std::string name = cur_.text;
    if (name == "true" || name == "false") {
      TML_RETURN_NOT_OK(Advance());
      return static_cast<const Value*>(m_->BoolLit(name == "true"));
    }
    if (name == "nil") {
      TML_RETURN_NOT_OK(Advance());
      return static_cast<const Value*>(m_->NilLit());
    }
    if (name == "cont" || name == "proc" || name == "lambda" ||
        name == "λ") {
      return ParseAbs(name);
    }
    TML_RETURN_NOT_OK(Advance());
    // innermost binding wins
    for (auto it = scope_.rbegin(); it != scope_.rend(); ++it) {
      if (it->first == name) return static_cast<const Value*>(it->second);
    }
    if (const Primitive* p = prims_.LookupName(name)) {
      return static_cast<const Value*>(m_->Prim(p));
    }
    if (opts_.allow_free_vars) {
      for (Variable* fv : free_vars_) {
        if (m_->NameOf(*fv) == name) return static_cast<const Value*>(fv);
      }
      Variable* fv = m_->NewValueVar(name);
      free_vars_.push_back(fv);
      return static_cast<const Value*>(fv);
    }
    return Status::NotFound("unbound identifier in TML text: " + name);
  }

  Result<const Value*> ParseAbs(const std::string& kw) {
    TML_RETURN_NOT_OK(Advance());  // consume keyword
    if (cur_.kind != Tok::kLParen) {
      return Status::Invalid("TML parse error: expected '(' after " + kw);
    }
    TML_RETURN_NOT_OK(Advance());
    std::vector<std::string> names;
    std::vector<bool> marked_cont;
    bool any_marked = false;
    int slash_at = -1;
    while (cur_.kind != Tok::kRParen) {
      if (cur_.kind == Tok::kSlash) {
        if (slash_at >= 0) {
          return Status::Invalid("TML parse error: duplicate '/'");
        }
        slash_at = static_cast<int>(names.size());
        TML_RETURN_NOT_OK(Advance());
        continue;
      }
      if (cur_.kind != Tok::kIdent) {
        return Status::Invalid("TML parse error: expected parameter name");
      }
      // `^name` explicitly marks a continuation-sort parameter (needed for
      // the Y generator's leading continuation, which neither the '/'
      // separator nor the proc default can express).
      if (cur_.text.size() > 1 && cur_.text[0] == '^') {
        names.push_back(cur_.text.substr(1));
        marked_cont.push_back(true);
        any_marked = true;
      } else {
        names.push_back(cur_.text);
        marked_cont.push_back(false);
      }
      TML_RETURN_NOT_OK(Advance());
    }
    TML_RETURN_NOT_OK(Advance());  // ')'

    size_t num_value;  // for the positional (slash / proc-default) rules
    if (any_marked || slash_at == static_cast<int>(names.size())) {
      num_value = names.size();  // sorts come from '^' marks only
    } else if (slash_at >= 0) {
      num_value = static_cast<size_t>(slash_at);
    } else if (kw == "proc") {
      // ce/cc convention: last two parameters are continuations.
      if (names.size() < 2) {
        return Status::Invalid(
            "TML parse error: proc needs >= 2 parameters (ce cc) "
            "or an explicit '/'");
      }
      num_value = names.size() - 2;
    } else {
      num_value = names.size();  // cont / bare lambda: all value params
    }

    std::vector<Variable*> params;
    params.reserve(names.size());
    size_t scope_base = scope_.size();
    for (size_t i = 0; i < names.size(); ++i) {
      bool is_cont = marked_cont[i] || i >= num_value;
      Variable* v = m_->NewVar(
          names[i], is_cont ? VarSort::kCont : VarSort::kValue);
      params.push_back(v);
      scope_.emplace_back(names[i], v);
    }
    TML_ASSIGN_OR_RETURN(const Application* body, ParseApp());
    scope_.resize(scope_base);
    return static_cast<const Value*>(m_->Abs(
        std::span<Variable* const>(params.data(), params.size()), body));
  }

  Status Advance() {
    TML_ASSIGN_OR_RETURN(cur_, lexer_.Next());
    return Status::OK();
  }

  Module* m_;
  const PrimitiveRegistry& prims_;
  Lexer lexer_;
  ParseOptions opts_;
  Token cur_;
  std::vector<std::pair<std::string, Variable*>> scope_;
  std::vector<Variable*> free_vars_;
};

}  // namespace

Result<ParseOutcome> ParseValueText(Module* m, const PrimitiveRegistry& prims,
                                    std::string_view text,
                                    const ParseOptions& opts) {
  Parser p(m, prims, text, opts);
  TML_RETURN_NOT_OK(p.Init());
  TML_ASSIGN_OR_RETURN(const Value* v, p.ParseValue());
  TML_RETURN_NOT_OK(p.ExpectEnd());
  ParseOutcome out;
  out.value = v;
  out.free_vars = p.TakeFreeVars();
  return out;
}

Result<ParseOutcome> ParseAppText(Module* m, const PrimitiveRegistry& prims,
                                  std::string_view text,
                                  const ParseOptions& opts) {
  Parser p(m, prims, text, opts);
  TML_RETURN_NOT_OK(p.Init());
  TML_ASSIGN_OR_RETURN(const Application* app, p.ParseApp());
  TML_RETURN_NOT_OK(p.ExpectEnd());
  ParseOutcome out;
  out.app = app;
  out.free_vars = p.TakeFreeVars();
  return out;
}

}  // namespace tml::ir
