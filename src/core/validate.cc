#include "core/validate.h"

#include <string>
#include <unordered_set>

#include "core/primitive.h"
#include "core/printer.h"

namespace tml::ir {

namespace {

/// Expected sort of an argument position.
enum class ArgSort : uint8_t { kValue, kCont };

class Validator {
 public:
  Validator(const Module& m, const ValidateOptions& opts) : m_(m) {
    for (const Variable* v : opts.free) in_scope_.insert(v);
  }

  Status CheckProgram(const Abstraction* prog) {
    TML_RETURN_NOT_OK(CheckProcShape(prog));
    return CheckAbs(prog);
  }

  Status CheckTopApp(const Application* app) { return CheckApp(app); }

 private:
  Status CheckAbs(const Abstraction* abs) {
    for (Variable* p : abs->params()) {
      if (!bound_once_.insert(p).second) {
        return Err("variable bound more than once (unique-binding rule): " +
                   VarName(p));
      }
      in_scope_.insert(p);
    }
    TML_RETURN_NOT_OK(CheckApp(abs->body()));
    for (Variable* p : abs->params()) in_scope_.erase(p);
    return Status::OK();
  }

  Status CheckApp(const Application* app) {
    // Callee-specific arity/sort layout.
    const Value* callee = app->callee();
    switch (callee->kind()) {
      case NodeKind::kLiteral:
      case NodeKind::kOid:
        return Err("literal or OID in functional position");
      case NodeKind::kAbstraction: {
        const Abstraction* abs = Cast<Abstraction>(callee);
        if (abs->num_params() != app->num_args()) {
          return Err("arity mismatch: abstraction expects " +
                     std::to_string(abs->num_params()) + " args, got " +
                     std::to_string(app->num_args()));
        }
        for (size_t i = 0; i < app->num_args(); ++i) {
          ArgSort want = abs->param(i)->is_cont() ? ArgSort::kCont
                                                  : ArgSort::kValue;
          TML_RETURN_NOT_OK(CheckArg(app->arg(i), want));
        }
        return CheckAbs(abs);
      }
      case NodeKind::kVariable: {
        const Variable* v = Cast<Variable>(callee);
        TML_RETURN_NOT_OK(CheckVarInScope(v));
        if (v->is_cont()) {
          // Continuations receive values only.
          for (const Value* a : app->args()) {
            TML_RETURN_NOT_OK(CheckArg(a, ArgSort::kValue));
          }
        } else {
          // User-level proc: value args then exactly (ce cc).
          if (app->num_args() < 2) {
            return Err("proc call needs at least (ce cc) continuations");
          }
          for (size_t i = 0; i < app->num_args(); ++i) {
            ArgSort want = (i + 2 >= app->num_args()) ? ArgSort::kCont
                                                      : ArgSort::kValue;
            TML_RETURN_NOT_OK(CheckArg(app->arg(i), want));
          }
        }
        return Status::OK();
      }
      case NodeKind::kPrimitive:
        return CheckPrimCall(Cast<PrimRef>(callee)->prim(), app);
      case NodeKind::kApplication:
        return Err("nested application (CPS forbids non-atomic operands)");
    }
    return Status::OK();
  }

  Status CheckPrimCall(const Primitive& prim, const Application* app) {
    if (prim.op() == PrimOp::kCase) return CheckCase(app);
    if (prim.op() == PrimOp::kY) return CheckY(app);
    if (prim.op() == PrimOp::kCCall) return CheckCCall(app);

    int nv = prim.num_value_args();
    int nc = prim.num_cont_args();
    if (nv >= 0 && nc >= 0 &&
        app->num_args() != static_cast<size_t>(nv + nc)) {
      return Err("primitive '" + std::string(prim.name()) + "' expects " +
                 std::to_string(nv + nc) + " args, got " +
                 std::to_string(app->num_args()));
    }
    size_t num_value = nv >= 0 ? static_cast<size_t>(nv)
                               : app->num_args() - static_cast<size_t>(nc);
    for (size_t i = 0; i < app->num_args(); ++i) {
      ArgSort want = i < num_value ? ArgSort::kValue : ArgSort::kCont;
      TML_RETURN_NOT_OK(CheckArg(app->arg(i), want));
    }
    return Status::OK();
  }

  // (== v t1..tn c1..cn [celse]) — tags are literals, n >= 1.
  Status CheckCase(const Application* app) {
    if (app->num_args() < 3) return Err("'==' needs scrutinee, tag, branch");
    TML_RETURN_NOT_OK(CheckArg(app->arg(0), ArgSort::kValue));
    size_t i = 1;
    size_t num_tags = 0;
    while (i < app->num_args() && Isa<Literal>(app->arg(i))) {
      ++num_tags;
      ++i;
    }
    if (num_tags == 0) return Err("'==' needs at least one literal tag");
    size_t num_conts = app->num_args() - 1 - num_tags;
    if (num_conts != num_tags && num_conts != num_tags + 1) {
      return Err("'==' needs one branch per tag plus optional else");
    }
    for (; i < app->num_args(); ++i) {
      TML_RETURN_NOT_OK(CheckArg(app->arg(i), ArgSort::kCont));
    }
    return Status::OK();
  }

  // (Y λ(c0 v1..vn c)(c cont()app abs1..absn))
  Status CheckY(const Application* app) {
    if (app->num_args() != 1 || !Isa<Abstraction>(app->arg(0))) {
      return Err("'Y' takes exactly one abstraction argument");
    }
    const Abstraction* gen = Cast<Abstraction>(app->arg(0));
    if (gen->num_params() < 2) return Err("'Y' abstraction needs (c0 .. c)");
    const Variable* c0 = gen->param(0);
    const Variable* c = gen->param(gen->num_params() - 1);
    if (!c0->is_cont() || !c->is_cont()) {
      return Err("'Y' abstraction must begin and end with cont params");
    }
    const Application* body = gen->body();
    if (body->callee() != c) {
      return Err("'Y' abstraction body must apply its last parameter");
    }
    size_t n = gen->num_params() - 2;
    if (body->num_args() != n + 1) {
      return Err("'Y' body must return " + std::to_string(n + 1) +
                 " abstractions");
    }
    for (size_t i = 0; i < body->num_args(); ++i) {
      if (!Isa<Abstraction>(body->arg(i))) {
        return Err("'Y' body may only return abstractions");
      }
    }
    // The entry abstraction (bound to c0) takes no parameters.
    if (Cast<Abstraction>(body->arg(0))->num_params() != 0) {
      return Err("'Y' entry continuation must be cont()");
    }
    // Bind the generator's parameters, then check each returned abstraction
    // directly: the body application (c k0 abs1..absn) is the multiple-value
    // return protocol of Y, not an ordinary call, so the abstractions are
    // not subject to the value-position (ce cc) shape rule — instead each
    // abs_i must agree in kind with the sort of the variable v_i it binds.
    for (Variable* p : gen->params()) {
      if (!bound_once_.insert(p).second) {
        return Err("variable bound more than once (unique-binding rule): " +
                   VarName(p));
      }
      in_scope_.insert(p);
    }
    Status st = Status::OK();
    for (size_t i = 0; st.ok() && i < body->num_args(); ++i) {
      const Abstraction* abs = Cast<Abstraction>(body->arg(i));
      if (i > 0) {
        const Variable* vi = gen->param(i);  // v_i pairs with abs_i
        if (vi->is_cont() != abs->is_cont()) {
          return Err("'Y' binding sort mismatch for " + VarName(vi));
        }
        if (!vi->is_cont()) TML_RETURN_NOT_OK(CheckProcShape(abs));
      }
      st = CheckAbs(abs);
    }
    for (Variable* p : gen->params()) in_scope_.erase(p);
    return st;
  }

  // (ccall "name" a1..an ce cc)
  Status CheckCCall(const Application* app) {
    if (app->num_args() < 3) return Err("'ccall' needs name, ce, cc");
    const Literal* name = DynCast<Literal>(app->arg(0));
    if (name == nullptr || name->lit_kind() != LitKind::kString) {
      return Err("'ccall' first argument must be a string literal");
    }
    for (size_t i = 1; i + 2 < app->num_args(); ++i) {
      TML_RETURN_NOT_OK(CheckArg(app->arg(i), ArgSort::kValue));
    }
    TML_RETURN_NOT_OK(CheckArg(app->arg(app->num_args() - 2), ArgSort::kCont));
    TML_RETURN_NOT_OK(CheckArg(app->arg(app->num_args() - 1), ArgSort::kCont));
    return Status::OK();
  }

  Status CheckArg(const Value* arg, ArgSort want) {
    switch (arg->kind()) {
      case NodeKind::kLiteral:
      case NodeKind::kOid:
      case NodeKind::kPrimitive:
        if (want == ArgSort::kCont) {
          return Err("constant in continuation position");
        }
        return Status::OK();
      case NodeKind::kVariable: {
        const Variable* v = Cast<Variable>(arg);
        TML_RETURN_NOT_OK(CheckVarInScope(v));
        if (want == ArgSort::kValue && v->is_cont()) {
          return Err("continuation variable escapes to value position: " +
                     VarName(v));
        }
        if (want == ArgSort::kCont && !v->is_cont()) {
          return Err("value variable used as continuation: " + VarName(v));
        }
        return Status::OK();
      }
      case NodeKind::kAbstraction: {
        const Abstraction* abs = Cast<Abstraction>(arg);
        if (want == ArgSort::kValue) {
          TML_RETURN_NOT_OK(CheckProcShape(abs));
        } else if (!abs->is_cont()) {
          return Err("proc abstraction used as continuation");
        }
        return CheckAbs(abs);
      }
      case NodeKind::kApplication:
        return Err("application used as operand");
    }
    return Status::OK();
  }

  // Constraint 5: value-position abstractions end in exactly (ce cc).
  Status CheckProcShape(const Abstraction* abs) {
    size_t n = abs->num_params();
    if (abs->num_cont_params() != 2 || n < 2 ||
        !abs->param(n - 1)->is_cont() || !abs->param(n - 2)->is_cont()) {
      return Err(
          "abstraction used as value must take exactly two trailing "
          "continuation parameters (ce cc)");
    }
    return Status::OK();
  }

  Status CheckVarInScope(const Variable* v) {
    if (in_scope_.count(v) == 0) {
      return Err("occurrence of variable outside its binder's scope: " +
                 VarName(v));
    }
    return Status::OK();
  }

  std::string VarName(const Variable* v) const {
    return std::string(m_.NameOf(*v)) + "_" + std::to_string(v->uid());
  }

  Status Err(const std::string& msg) const {
    return Status::Invalid("TML validation: " + msg);
  }

  const Module& m_;
  std::unordered_set<const Variable*> in_scope_;
  std::unordered_set<const Variable*> bound_once_;
};

}  // namespace

Status Validate(const Module& m, const Abstraction* prog,
                const ValidateOptions& opts) {
  Validator v(m, opts);
  return v.CheckProgram(prog);
}

Status ValidateApp(const Module& m, const Application* app,
                   const ValidateOptions& opts) {
  Validator v(m, opts);
  return v.CheckTopApp(app);
}

}  // namespace tml::ir
