// S-expression parser for the printed TML notation.
//
// Grammar (comments run from ';' to end of line):
//
//   app    := '(' value+ ')'
//   value  := INT | REAL | CHAR | STRING | 'true' | 'false' | 'nil'
//           | '<oid' HEX '>'
//           | IDENT                      -- bound var, primitive, or free var
//           | ('cont'|'proc'|'λ'|'lambda') '(' params ')' app
//   params := IDENT* [ '/' IDENT* ]      -- '/' separates value params from
//                                        -- continuation params
//
// Without an explicit '/': `cont` binds value parameters only; `proc`
// treats its last two parameters as continuations (the ce/cc convention of
// §2.2 constraint 5); `λ`/`lambda` binds value parameters only.
//
// Identifier resolution: innermost bound variable, else registered
// primitive, else (when ParseOptions::allow_free_vars) a fresh free
// variable recorded in ParseOutcome::free_vars.

#ifndef TML_CORE_PARSER_H_
#define TML_CORE_PARSER_H_

#include <string_view>
#include <vector>

#include "core/module.h"
#include "core/primitive_registry.h"
#include "support/status.h"

namespace tml::ir {

struct ParseOptions {
  bool allow_free_vars = false;
};

struct ParseOutcome {
  const Value* value = nullptr;      // set by ParseValueText
  const Application* app = nullptr;  // set by ParseAppText
  /// Free variables in first-occurrence order.
  std::vector<Variable*> free_vars;
};

/// Parse a single value (most commonly a proc abstraction).
Result<ParseOutcome> ParseValueText(Module* m, const PrimitiveRegistry& prims,
                                    std::string_view text,
                                    const ParseOptions& opts = {});

/// Parse a single application.
Result<ParseOutcome> ParseAppText(Module* m, const PrimitiveRegistry& prims,
                                  std::string_view text,
                                  const ParseOptions& opts = {});

}  // namespace tml::ir

#endif  // TML_CORE_PARSER_H_
