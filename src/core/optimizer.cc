#include "core/optimizer.h"

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace tml::ir {

std::string OptimizerStats::ToString() const {
  return "rounds=" + std::to_string(rounds) + " size " +
         std::to_string(input_size) + " -> " + std::to_string(output_size) +
         " | " + rewrite.ToString() + " | " + expand.ToString();
}

const Abstraction* Optimize(Module* m, const Abstraction* prog,
                            const OptimizerOptions& opts,
                            OptimizerStats* stats) {
  TML_TELEMETRY_SPAN("optimizer", "optimize");
  const uint64_t start_ns = telemetry::Tracer::NowNs();
  OptimizerStats local;
  OptimizerStats* s = stats != nullptr ? stats : &local;
  const uint64_t local_rounds_before = s->rounds;
  s->input_size = 1 + TermSize(prog->body());

  int penalty = 0;
  bool pending_expansion = false;
  for (int round = 0; round < opts.max_rounds; ++round) {
    ++s->rounds;
    const Abstraction* reduced = Reduce(m, prog, opts.rewrite, &s->rewrite);
    ExpandStats round_expand;
    const Abstraction* expanded =
        Expand(m, reduced, opts.expand, penalty, &round_expand);
    s->expand += round_expand;
    bool expand_changed = (expanded != reduced);
    prog = expanded;
    pending_expansion = expand_changed;
    if (!expand_changed) break;
    // Accumulate the §3 penalty: each inlined copy tightens the budget of
    // subsequent rounds until the process necessarily stops.
    penalty += opts.expand.round_penalty +
               static_cast<int>(round_expand.inlined);
    if (penalty >= opts.penalty_limit) break;
  }
  if (pending_expansion) {
    // The loop stopped right after an expansion (penalty limit or round
    // budget): clean up the β-redexes it introduced so the result is a
    // reduction fixpoint.
    prog = Reduce(m, prog, opts.rewrite, &s->rewrite);
  }
  s->output_size = 1 + TermSize(prog->body());

  static telemetry::Counter* runs =
      telemetry::Registry::Global().GetCounter("tml.optimizer.runs");
  static telemetry::Counter* rounds =
      telemetry::Registry::Global().GetCounter("tml.optimizer.rounds");
  static telemetry::Histogram* latency =
      telemetry::Registry::Global().GetHistogram("tml.optimizer.latency_us");
  runs->Increment();
  rounds->Add(s->rounds - local_rounds_before);
  latency->Observe((telemetry::Tracer::NowNs() - start_ns) / 1000);
  return prog;
}

}  // namespace tml::ir
