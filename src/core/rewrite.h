// The TML reduction pass (paper §3).
//
// Implements the core rewrite rules
//
//   subst       λ(..v..)app / ..val..   ->  λ(..v..)app[val/v] / ..val..
//               (val ∉ Abs ∨ |app|_v = 1)
//   remove      |app|_v = 0             ->  strike the binding and its value
//   reduce      (λ()app)                ->  app
//   η-reduce    λ(v1..vn)(val v1..vn)   ->  val        (∀i |val|_vi = 0)
//   fold        (prim val1..valn)       ->  eval(prim, val1..valn)
//   case-subst  branch bodies see the matched tag value
//   Y-remove    unreferenced recursive bindings are struck
//   Y-reduce    (Y λ(c0 c)(c cont()app)) -> app          (|app|_c0 = 0)
//
// applied bottom-up until no rule fires.  Every rule strictly shrinks the
// term (or is idempotence-guarded), so each sweep terminates and the
// fixpoint loop needs at most O(term size) sweeps.
//
// |E|_v is tracked in an OccurrenceMap built per sweep and updated exactly
// at every rule application, keeping the `subst` precondition |app|_v = 1
// for abstractions sound even after earlier copy propagation in the same
// sweep (duplicating an abstraction would break the unique-binding rule).
//
// Per-rule enable flags exist for the E5 ablation benchmarks; per-rule
// counters feed the optimizer statistics the paper attaches to generated
// code ("costs, savings, ...", §4.1).

#ifndef TML_CORE_REWRITE_H_
#define TML_CORE_REWRITE_H_

#include <cstdint>
#include <string>

#include "core/module.h"
#include "core/node.h"

namespace tml::ir {

struct RewriteOptions {
  bool enable_subst = true;
  bool enable_remove = true;
  bool enable_reduce = true;
  bool enable_eta = true;
  bool enable_fold = true;
  bool enable_case_subst = true;
  bool enable_y_rules = true;
  /// Safety bound on fixpoint sweeps (each sweep shrinks the term, so this
  /// is never reached by well-formed input).
  int max_sweeps = 1000;
};

struct RewriteStats {
  uint64_t subst = 0;
  uint64_t remove = 0;
  uint64_t reduce = 0;
  uint64_t eta = 0;
  uint64_t fold = 0;
  uint64_t case_subst = 0;
  uint64_t y_remove = 0;
  uint64_t y_reduce = 0;
  /// Y-subst: a recursive binding whose value η-reduced to a leaf (most
  /// prominently a library wrapper collapsing to its primitive) is
  /// substituted at every use — the companion of `subst` for Y scopes.
  uint64_t y_subst = 0;
  uint64_t sweeps = 0;

  uint64_t TotalApplications() const {
    return subst + remove + reduce + eta + fold + case_subst + y_remove +
           y_reduce + y_subst;
  }
  std::string ToString() const;
  RewriteStats& operator+=(const RewriteStats& o);
};

/// Reduce a whole program (proc abstraction) to its rewrite fixpoint.
const Abstraction* Reduce(Module* m, const Abstraction* prog,
                          const RewriteOptions& opts = {},
                          RewriteStats* stats = nullptr);

/// Reduce a bare application (used by tests and the query rewriter).
const Application* ReduceApp(Module* m, const Application* app,
                             const RewriteOptions& opts = {},
                             RewriteStats* stats = nullptr);

}  // namespace tml::ir

#endif  // TML_CORE_REWRITE_H_
