// Identifier substitution E[val/v] (paper §3).
//
// Functional path-copying: subtrees that contain no occurrence of `v` are
// shared with the input term, so substitution is O(|E|) with no allocation
// along unchanged paths.  Because of the unique-binding rule no α-collision
// can occur; when `val` is an abstraction the caller must guarantee that at
// most one occurrence is replaced (the `subst` rule precondition), otherwise
// the clone must be α-renamed first (see the expansion pass).

#ifndef TML_CORE_SUBST_H_
#define TML_CORE_SUBST_H_

#include "core/module.h"
#include "core/node.h"

namespace tml::ir {

const Value* SubstituteValue(Module* m, const Value* node, const Variable* v,
                             const Value* val);
const Application* Substitute(Module* m, const Application* app,
                              const Variable* v, const Value* val);

}  // namespace tml::ir

#endif  // TML_CORE_SUBST_H_
