#include "core/rewrite.h"

#include <cassert>
#include <vector>

#include "core/analysis.h"
#include "core/primitive.h"
#include "core/subst.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace tml::ir {

namespace {

// Flush one reduction run's rule firings to the global registry as deltas.
// The per-rule Counter* are resolved once and cached: the steady-state cost
// per Reduce/ReduceApp call is nine relaxed adds, independent of how many
// rules fired.
void PublishRewriteStats(const RewriteStats& s) {
  using telemetry::Counter;
  using telemetry::Registry;
  static Counter* subst =
      Registry::Global().GetCounter("tml.rewrite.fired", {{"rule", "subst"}});
  static Counter* remove =
      Registry::Global().GetCounter("tml.rewrite.fired", {{"rule", "remove"}});
  static Counter* reduce =
      Registry::Global().GetCounter("tml.rewrite.fired", {{"rule", "reduce"}});
  static Counter* eta =
      Registry::Global().GetCounter("tml.rewrite.fired", {{"rule", "eta"}});
  static Counter* fold =
      Registry::Global().GetCounter("tml.rewrite.fired", {{"rule", "fold"}});
  static Counter* case_subst = Registry::Global().GetCounter(
      "tml.rewrite.fired", {{"rule", "case-subst"}});
  static Counter* y_remove = Registry::Global().GetCounter(
      "tml.rewrite.fired", {{"rule", "y-remove"}});
  static Counter* y_reduce = Registry::Global().GetCounter(
      "tml.rewrite.fired", {{"rule", "y-reduce"}});
  static Counter* y_subst = Registry::Global().GetCounter(
      "tml.rewrite.fired", {{"rule", "y-subst"}});
  static Counter* sweeps =
      Registry::Global().GetCounter("tml.rewrite.sweeps");
  if (s.subst != 0) subst->Add(s.subst);
  if (s.remove != 0) remove->Add(s.remove);
  if (s.reduce != 0) reduce->Add(s.reduce);
  if (s.eta != 0) eta->Add(s.eta);
  if (s.fold != 0) fold->Add(s.fold);
  if (s.case_subst != 0) case_subst->Add(s.case_subst);
  if (s.y_remove != 0) y_remove->Add(s.y_remove);
  if (s.y_reduce != 0) y_reduce->Add(s.y_reduce);
  if (s.y_subst != 0) y_subst->Add(s.y_subst);
  if (s.sweeps != 0) sweeps->Add(s.sweeps);
}

// Field-wise after - before, for publishing only what this run fired when
// the caller reuses an accumulating stats struct.
RewriteStats StatsDelta(const RewriteStats& after, const RewriteStats& before) {
  RewriteStats d;
  d.subst = after.subst - before.subst;
  d.remove = after.remove - before.remove;
  d.reduce = after.reduce - before.reduce;
  d.eta = after.eta - before.eta;
  d.fold = after.fold - before.fold;
  d.case_subst = after.case_subst - before.case_subst;
  d.y_remove = after.y_remove - before.y_remove;
  d.y_reduce = after.y_reduce - before.y_reduce;
  d.y_subst = after.y_subst - before.y_subst;
  d.sweeps = after.sweeps - before.sweeps;
  return d;
}

}  // namespace

std::string RewriteStats::ToString() const {
  std::string s;
  s += "subst=" + std::to_string(subst);
  s += " remove=" + std::to_string(remove);
  s += " reduce=" + std::to_string(reduce);
  s += " eta=" + std::to_string(eta);
  s += " fold=" + std::to_string(fold);
  s += " case-subst=" + std::to_string(case_subst);
  s += " Y-remove=" + std::to_string(y_remove);
  s += " Y-reduce=" + std::to_string(y_reduce);
  s += " Y-subst=" + std::to_string(y_subst);
  s += " sweeps=" + std::to_string(sweeps);
  return s;
}

RewriteStats& RewriteStats::operator+=(const RewriteStats& o) {
  subst += o.subst;
  remove += o.remove;
  reduce += o.reduce;
  eta += o.eta;
  fold += o.fold;
  case_subst += o.case_subst;
  y_remove += o.y_remove;
  y_reduce += o.y_reduce;
  y_subst += o.y_subst;
  sweeps += o.sweeps;
  return *this;
}

namespace {

// NOTE on |E|_v: thanks to the unique-binding rule every occurrence of a
// variable lies beneath its binder, so each rule precondition is decidable
// by a *local* traversal of the binder's scope (the |app|_v of §3, taken
// literally).  The reducer therefore recounts at each rule site instead of
// maintaining a global incremental map — immune to drift by construction.
class Reducer {
 public:
  Reducer(Module* m, const RewriteOptions& opts, RewriteStats* stats)
      : m_(m), opts_(opts), stats_(stats) {}

  const Application* Fixpoint(const Application* app) {
    for (int i = 0; i < opts_.max_sweeps; ++i) {
      changed_ = false;
      app = RewriteApp(app);
      Bump(&stats_->sweeps);
      if (!changed_) break;
    }
    return app;
  }

 private:
  // ---- Sweep machinery -------------------------------------------------

  const Value* RewriteValue(const Value* v) {
    if (!Isa<Abstraction>(v)) return v;
    const Abstraction* abs = Cast<Abstraction>(v);
    const Application* body = RewriteApp(abs->body());
    if (body != abs->body()) abs = m_->Abs(abs->params(), body);
    return TryEta(abs);
  }

  const Application* RewriteApp(const Application* app) {
    // Bottom-up: operands first.
    bool rebuilt = false;
    std::vector<const Value*> elems;
    elems.reserve(app->num_args() + 1);
    {
      const Value* c = RewriteValue(app->callee());
      rebuilt |= (c != app->callee());
      elems.push_back(c);
    }
    for (const Value* a : app->args()) {
      const Value* na = RewriteValue(a);
      rebuilt |= (na != a);
      elems.push_back(na);
    }
    if (rebuilt) app = m_->AppWith(*app, std::move(elems));

    const Value* callee = app->callee();
    if (Isa<Abstraction>(callee)) return RewriteBeta(app);
    if (Isa<PrimRef>(callee)) return RewritePrim(app);
    return app;
  }

  // ---- η-reduce ---------------------------------------------------------

  const Value* TryEta(const Abstraction* abs) {
    if (!opts_.enable_eta) return abs;
    const Application* body = abs->body();
    if (body->num_args() != abs->num_params() || abs->num_params() == 0) {
      return abs;
    }
    for (size_t i = 0; i < abs->num_params(); ++i) {
      if (body->arg(i) != abs->param(i)) return abs;
    }
    const Value* target = body->callee();
    for (const Variable* p : abs->params()) {
      if (CountOccurrences(target, p) != 0) return abs;
    }
    Bump(&stats_->eta);
    changed_ = true;
    return target;
  }

  // ---- subst / remove / reduce on ((λ..)..) ------------------------------

  const Application* RewriteBeta(const Application* app) {
    const Abstraction* abs = Cast<Abstraction>(app->callee());
    if (abs->num_params() != app->num_args()) return app;  // ill-formed

    const Application* body = abs->body();
    std::vector<Variable*> keep_params;
    std::vector<const Value*> keep_args;
    bool local_changed = false;

    for (size_t i = 0; i < abs->num_params(); ++i) {
      Variable* v = abs->param(i);
      const Value* arg = app->arg(i);
      // |body|_v by local traversal (exact: all occurrences are in scope).
      uint32_t cnt = CountOccurrences(body, v);
      bool arg_is_abs = Isa<Abstraction>(arg);
      // Substituting an abstraction relies on `remove` striking the (now
      // dead) binding immediately — otherwise the same abstraction object
      // would appear twice, breaking unique binding (the paper makes the
      // same observation in §3).
      bool subst_ok = opts_.enable_subst &&
                      (!arg_is_abs || opts_.enable_remove);
      if (subst_ok && cnt > 0 && (!arg_is_abs || cnt == 1)) {
        // subst: replace every occurrence; the precondition keeps
        // abstraction bodies from being duplicated.
        body = Substitute(m_, body, v, arg);
        cnt = 0;
        local_changed = true;
        Bump(&stats_->subst);
      }
      if (opts_.enable_remove && cnt == 0) {
        // remove: strike the dead binding together with its value.
        local_changed = true;
        Bump(&stats_->remove);
        continue;
      }
      keep_params.push_back(v);
      keep_args.push_back(arg);
    }

    if (keep_params.empty() && opts_.enable_reduce) {
      Bump(&stats_->reduce);
      changed_ = true;
      return body;
    }
    if (!local_changed) return app;
    changed_ = true;
    return m_->App(
        m_->Abs(std::span<Variable* const>(keep_params.data(),
                                           keep_params.size()),
                body),
        std::span<const Value* const>(keep_args.data(), keep_args.size()));
  }

  // ---- primitive rules ---------------------------------------------------

  const Application* RewritePrim(const Application* app) {
    const Primitive& prim = Cast<PrimRef>(app->callee())->prim();
    switch (prim.op()) {
      case PrimOp::kCase:
        return RewriteCase(app);
      case PrimOp::kY:
        return RewriteY(app);
      default:
        break;
    }
    if (!opts_.enable_fold || !prim.foldable()) return app;
    const Application* folded = prim.Fold(m_, *app);
    if (folded == nullptr) return app;
    Bump(&stats_->fold);
    changed_ = true;
    return folded;
  }

  // (== v t1..tn c1..cn [celse]) — fold on literal scrutinee; case-subst on
  // variable scrutinee.
  const Application* RewriteCase(const Application* app) {
    if (app->num_args() < 3) return app;
    const Value* scrutinee = app->arg(0);
    size_t num_tags = 0;
    while (1 + num_tags < app->num_args() &&
           Isa<Literal>(app->arg(1 + num_tags))) {
      ++num_tags;
    }
    size_t num_conts = app->num_args() - 1 - num_tags;
    if (num_tags == 0 ||
        (num_conts != num_tags && num_conts != num_tags + 1)) {
      return app;  // ill-formed; leave for the validator
    }
    bool has_else = num_conts == num_tags + 1;

    if (opts_.enable_fold && Isa<Literal>(scrutinee)) {
      // fold ==: the matching branch (or else) is invoked directly.
      const Literal* lit = Cast<Literal>(scrutinee);
      const Value* taken = nullptr;
      for (size_t i = 0; i < num_tags; ++i) {
        const Literal* tag = Cast<Literal>(app->arg(1 + i));
        if (LiteralEquals(*lit, *tag)) {
          taken = app->arg(1 + num_tags + i);
          break;
        }
      }
      if (taken == nullptr && has_else) {
        taken = app->arg(app->num_args() - 1);
      }
      if (taken != nullptr) {
        Bump(&stats_->fold);
        changed_ = true;
        return m_->App(taken, {});
      }
      return app;
    }

    if (!opts_.enable_case_subst || !Isa<Variable>(scrutinee)) return app;
    const Variable* v = Cast<Variable>(scrutinee);
    bool fired = false;
    std::vector<const Value*> elems;
    elems.reserve(app->num_args() + 1);
    elems.push_back(app->callee());
    for (size_t i = 0; i < app->num_args(); ++i) elems.push_back(app->arg(i));
    for (size_t i = 0; i < num_tags; ++i) {
      const Value* branch = app->arg(1 + num_tags + i);
      const Abstraction* abs = DynCast<Abstraction>(branch);
      if (abs == nullptr) continue;
      if (CountOccurrences(abs->body(), v) == 0) continue;
      const Application* nb = Substitute(m_, abs->body(), v, app->arg(1 + i));
      elems[1 + 1 + num_tags + i] = m_->Abs(abs->params(), nb);
      fired = true;
    }
    if (!fired) return app;
    Bump(&stats_->case_subst);
    changed_ = true;
    return m_->AppWith(*app, std::move(elems));
  }

  // (Y λ(c0 v1..vn c)(c k0 abs1..absn)) — substitute leaf bindings, strike
  // dead recursive bindings, collapse empty fixpoints.
  const Application* RewriteY(const Application* app) {
    if (app->num_args() != 1) return app;
    const Abstraction* gen = DynCast<Abstraction>(app->arg(0));
    if (gen == nullptr || gen->num_params() < 2) return app;
    const Application* ybody = gen->body();
    const Variable* c0 = gen->param(0);
    const Variable* c = gen->param(gen->num_params() - 1);
    if (ybody->callee() != c) return app;
    size_t n = gen->num_params() - 2;
    if (ybody->num_args() != n + 1) return app;

    // Y-subst: a binding whose value is a *leaf* (η reduced a wrapper to
    // its primitive, or copy propagation produced a variable/constant) is
    // substituted at every occurrence and struck — like `subst`, leaves
    // may be copied freely.  This rule restores the Fig. 2 shape invariant
    // (Y bodies return abstractions), so it is not gated by
    // enable_y_rules.
    for (size_t i = 1; i <= n; ++i) {
      const Value* reti = ybody->arg(i);
      if (Isa<Abstraction>(reti)) continue;
      Variable* vi = gen->param(i);
      // v := v denotes ⊥ (a forwarding loop η-reduced onto itself);
      // substituting it would unbind other occurrences — leave it for
      // Y-remove to strike once dead.
      if (reti == vi) continue;
      const Application* nbody0 = Substitute(m_, ybody, vi, reti);
      std::vector<Variable*> nparams;
      std::vector<const Value*> nrets;
      for (size_t j = 0; j < gen->num_params(); ++j) {
        if (j != i) nparams.push_back(gen->param(j));
      }
      nrets.push_back(nbody0->arg(0));
      for (size_t j = 1; j <= n; ++j) {
        if (j != i) nrets.push_back(nbody0->arg(j));
      }
      const Application* nybody =
          m_->App(nbody0->callee(),
                  std::span<const Value* const>(nrets.data(), nrets.size()));
      const Abstraction* ngen = m_->Abs(
          std::span<Variable* const>(nparams.data(), nparams.size()),
          nybody);
      Bump(&stats_->y_subst);
      changed_ = true;
      // Re-process the rebuilt Y application this sweep.
      return RewritePrim(m_->App(app->callee(), {ngen}));
    }

    if (!opts_.enable_y_rules) return app;

    // Y-remove: |app|_vi = 0 ∧ ∀j≠i |val_j|_vi = 0, checked by local
    // traversal of the entry and the *other* bindings (occurrences inside
    // v_i's own body are allowed — self recursion of a dead function).
    std::vector<Variable*> keep_params;
    std::vector<const Value*> keep_rets;
    keep_params.push_back(gen->param(0));
    keep_rets.push_back(ybody->arg(0));
    bool removed = false;
    for (size_t i = 1; i <= n; ++i) {
      Variable* vi = gen->param(i);
      uint32_t external = CountOccurrences(ybody->arg(0), vi);
      for (size_t j = 1; j <= n && external == 0; ++j) {
        if (j != i) external += CountOccurrences(ybody->arg(j), vi);
      }
      if (external == 0) {
        removed = true;
        Bump(&stats_->y_remove);
        continue;
      }
      keep_params.push_back(vi);
      keep_rets.push_back(ybody->arg(i));
    }
    size_t n2 = keep_params.size() - 1;
    keep_params.push_back(gen->param(gen->num_params() - 1));

    // Y-reduce: no recursive bindings left and the entry continuation is
    // not self-referential -> the fixpoint collapses to the entry body.
    const Abstraction* entry = DynCast<Abstraction>(keep_rets[0]);
    if (n2 == 0 && entry != nullptr && entry->num_params() == 0 &&
        CountOccurrences(entry->body(), c0) == 0) {
      Bump(&stats_->y_reduce);
      changed_ = true;
      return entry->body();
    }

    if (!removed) return app;
    changed_ = true;
    const Application* nbody =
        m_->App(c, std::span<const Value* const>(keep_rets.data(),
                                                 keep_rets.size()));
    const Abstraction* ngen =
        m_->Abs(std::span<Variable* const>(keep_params.data(),
                                           keep_params.size()),
                nbody);
    return m_->App(app->callee(), {ngen});
  }

  void Bump(uint64_t* counter) { ++*counter; }

  Module* m_;
  const RewriteOptions& opts_;
  RewriteStats* stats_;
  bool changed_ = false;
};

}  // namespace

const Abstraction* Reduce(Module* m, const Abstraction* prog,
                          const RewriteOptions& opts, RewriteStats* stats) {
  TML_TELEMETRY_SPAN("optimizer", "reduce");
  RewriteStats local;
  RewriteStats* used = stats != nullptr ? stats : &local;
  const RewriteStats before = *used;
  Reducer r(m, opts, used);
  const Application* body = r.Fixpoint(prog->body());
  PublishRewriteStats(StatsDelta(*used, before));
  if (body == prog->body()) return prog;
  return m->Abs(prog->params(), body);
}

const Application* ReduceApp(Module* m, const Application* app,
                             const RewriteOptions& opts,
                             RewriteStats* stats) {
  TML_TELEMETRY_SPAN("optimizer", "reduce");
  RewriteStats local;
  RewriteStats* used = stats != nullptr ? stats : &local;
  const RewriteStats before = *used;
  Reducer r(m, opts, used);
  const Application* out = r.Fixpoint(app);
  PublishRewriteStats(StatsDelta(*used, before));
  return out;
}

}  // namespace tml::ir
