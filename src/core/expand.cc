#include "core/expand.h"

#include <unordered_map>
#include <vector>

#include "core/analysis.h"
#include "core/primitive.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace tml::ir {

std::string ExpandStats::ToString() const {
  return "inlined=" + std::to_string(inlined) +
         " considered=" + std::to_string(considered) +
         " rejected=" + std::to_string(rejected_cost);
}

ExpandStats& ExpandStats::operator+=(const ExpandStats& o) {
  inlined += o.inlined;
  considered += o.considered;
  rejected_cost += o.rejected_cost;
  return *this;
}

int EstimateAbsCost(const Abstraction* abs) {
  return EstimateCost(abs->body());
}

int EstimateCost(const Application* app) {
  int cost = 0;
  const Value* callee = app->callee();
  if (const PrimRef* pr = DynCast<PrimRef>(callee)) {
    cost += pr->prim().CostEstimate(*app);
  } else if (Isa<Variable>(callee)) {
    // Dynamic transfer of control with argument passing.
    cost += 2 + static_cast<int>(app->num_args());
  } else {
    cost += 1;
  }
  // Nested abstractions contribute the cost of their (single) body — a
  // static estimate, not a dynamic frequency-weighted one (Appel's model
  // makes the same simplification).
  for (const Value* a : app->args()) {
    if (const Abstraction* abs = DynCast<Abstraction>(a)) {
      cost += EstimateAbsCost(abs);
    }
  }
  if (const Abstraction* abs = DynCast<Abstraction>(callee)) {
    cost += EstimateAbsCost(abs);
  }
  return cost;
}

namespace {

class Expander {
 public:
  Expander(Module* m, const ExpandOptions& opts, int penalty,
           ExpandStats* stats)
      : m_(m), opts_(opts), penalty_(penalty), stats_(stats) {}

  const Application* Run(const Application* app) {
    counts_ = OccurrenceMap::For(app);
    return ExpandApp(app);
  }

  bool changed() const { return changed_; }

 private:
  const Value* ExpandValue(const Value* v) {
    const Abstraction* abs = DynCast<Abstraction>(v);
    if (abs == nullptr) return v;
    const Application* body = ExpandApp(abs->body());
    if (body == abs->body()) return v;
    return m_->Abs(abs->params(), body);
  }

  const Application* ExpandApp(const Application* app) {
    // Record bindings introduced by this node before descending.
    size_t env_base = env_.size();
    const Value* callee = app->callee();

    if (const Abstraction* abs = DynCast<Abstraction>(callee)) {
      // ((λ(v1..vn) body) a1..an): v_i |-> a_i inside body.
      if (abs->num_params() == app->num_args()) {
        for (size_t i = 0; i < app->num_args(); ++i) {
          if (const Abstraction* bound = DynCast<Abstraction>(app->arg(i))) {
            env_.emplace_back(abs->param(i), bound);
          }
        }
      }
    } else if (const PrimRef* pr = DynCast<PrimRef>(callee);
               pr != nullptr && pr->prim().op() == PrimOp::kY &&
               app->num_args() == 1) {
      // (Y λ(c0 v1..vn c)(c k0 abs1..absn)): v_i |-> abs_i everywhere in
      // the generator's scope (the bindings are mutually recursive).
      if (const Abstraction* gen = DynCast<Abstraction>(app->arg(0))) {
        const Application* ybody = gen->body();
        size_t n = gen->num_params() >= 2 ? gen->num_params() - 2 : 0;
        if (ybody->num_args() == n + 1 &&
            ybody->callee() == gen->param(gen->num_params() - 1)) {
          for (size_t i = 1; i <= n; ++i) {
            if (const Abstraction* bound =
                    DynCast<Abstraction>(ybody->arg(i))) {
              env_.emplace_back(gen->param(i), bound);
            }
          }
        }
      }
    }

    // Descend.
    bool rebuilt = false;
    std::vector<const Value*> elems;
    elems.reserve(app->num_args() + 1);
    const Value* ncallee = ExpandValue(callee);
    rebuilt |= (ncallee != callee);
    elems.push_back(ncallee);
    for (const Value* a : app->args()) {
      const Value* na = ExpandValue(a);
      rebuilt |= (na != a);
      elems.push_back(na);
    }

    // Try to inline at this call site: callee is a variable bound to a
    // known abstraction.
    if (const Variable* f = DynCast<Variable>(ncallee)) {
      if (const Abstraction* target = Lookup(f)) {
        ++stats_->considered;
        if (ShouldInline(target, app)) {
          elems[0] = m_->AlphaClone(*target);
          rebuilt = true;
          changed_ = true;
          ++expansions_;
          ++stats_->inlined;
        } else {
          ++stats_->rejected_cost;
        }
      }
    }

    env_.resize(env_base);
    if (!rebuilt) return app;
    return m_->AppWith(*app, std::move(elems));
  }

  const Abstraction* Lookup(const Variable* v) const {
    for (auto it = env_.rbegin(); it != env_.rend(); ++it) {
      if (it->first == v) return it->second;
    }
    return nullptr;
  }

  bool ShouldInline(const Abstraction* target, const Application* site) {
    if (expansions_ >= opts_.max_expansions_per_pass) return false;
    if (target->num_params() != site->num_args()) return false;
    int body_cost = EstimateAbsCost(target);
    if (body_cost <= opts_.always_inline_cost) return true;
    int savings = 0;
    for (const Value* a : site->args()) {
      switch (a->kind()) {
        case NodeKind::kLiteral:
        case NodeKind::kOid:
        case NodeKind::kAbstraction:
        case NodeKind::kPrimitive:
          savings += opts_.savings_per_static_arg;
          break;
        default:
          break;
      }
    }
    int budget = opts_.budget + savings - penalty_;
    return body_cost <= budget;
  }

  Module* m_;
  const ExpandOptions& opts_;
  int penalty_;
  ExpandStats* stats_;
  OccurrenceMap counts_;
  std::vector<std::pair<const Variable*, const Abstraction*>> env_;
  bool changed_ = false;
  int expansions_ = 0;
};

}  // namespace

const Abstraction* Expand(Module* m, const Abstraction* prog,
                          const ExpandOptions& opts, int penalty,
                          ExpandStats* stats) {
  TML_TELEMETRY_SPAN("optimizer", "expand");
  ExpandStats local;
  ExpandStats* used = stats != nullptr ? stats : &local;
  const ExpandStats before = *used;
  Expander e(m, opts, penalty, used);
  const Application* body = e.Run(prog->body());
  static telemetry::Counter* inlined =
      telemetry::Registry::Global().GetCounter("tml.expand.inlined");
  static telemetry::Counter* considered =
      telemetry::Registry::Global().GetCounter("tml.expand.considered");
  static telemetry::Counter* rejected =
      telemetry::Registry::Global().GetCounter("tml.expand.rejected_cost");
  if (used->inlined != before.inlined) inlined->Add(used->inlined - before.inlined);
  if (used->considered != before.considered) {
    considered->Add(used->considered - before.considered);
  }
  if (used->rejected_cost != before.rejected_cost) {
    rejected->Add(used->rejected_cost - before.rejected_cost);
  }
  if (!e.changed()) return prog;
  return m->Abs(prog->params(), body);
}

}  // namespace tml::ir
