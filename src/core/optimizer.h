// The two-phase TML optimizer (paper §3).
//
// Alternates a reduction pass (applied to its fixpoint; guaranteed to
// terminate because every rule shrinks the term) with an expansion pass
// (inlining / view expansion).  Each round accumulates a penalty that
// tightens the inlining budget, so the alternation terminates "even in
// obscure cases" exactly as the paper prescribes.
//
// The same optimizer object serves the static compiler, the reflective
// runtime optimizer (§4.1) and the query rewriter (§4.2): they differ only
// in how much binding information is present in the input term.

#ifndef TML_CORE_OPTIMIZER_H_
#define TML_CORE_OPTIMIZER_H_

#include <string>

#include "core/expand.h"
#include "core/module.h"
#include "core/rewrite.h"

namespace tml::ir {

struct OptimizerOptions {
  RewriteOptions rewrite;
  ExpandOptions expand;
  /// Stop when the accumulated penalty reaches this limit (§3).
  int penalty_limit = 64;
  /// Upper bound on reduction/expansion rounds.
  int max_rounds = 16;
  /// Backend: fuse hot adjacent opcode sequences into superinstructions
  /// after code generation (the third execution tier; see vm/fuse.h).
  bool fuse_superinstructions = true;
};

struct OptimizerStats {
  RewriteStats rewrite;
  ExpandStats expand;
  int rounds = 0;
  size_t input_size = 0;   ///< term size before optimization
  size_t output_size = 0;  ///< term size after optimization
  std::string ToString() const;
};

/// Optimize a whole program (a proc abstraction) in place of module `m`.
const Abstraction* Optimize(Module* m, const Abstraction* prog,
                            const OptimizerOptions& opts = {},
                            OptimizerStats* stats = nullptr);

}  // namespace tml::ir

#endif  // TML_CORE_OPTIMIZER_H_
