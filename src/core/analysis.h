// Binding analysis over TML terms (paper §1, §3).
//
// The three "common tasks" the paper identifies — binding analysis,
// identifier substitution and free-variable analysis — are provided here as
// reusable tools shared by the static optimizer, the reflective runtime
// optimizer and the query rewriter.

#ifndef TML_CORE_ANALYSIS_H_
#define TML_CORE_ANALYSIS_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/module.h"
#include "core/node.h"

namespace tml::ir {

/// |E|_v for every variable v: the number of occurrence positions of v in a
/// term.  Maintained incrementally by the reduction pass so that rule
/// preconditions (|app|_v == 0, == 1) stay exact during a sweep.
class OccurrenceMap {
 public:
  /// Build the map for a whole term.
  static OccurrenceMap For(const Application* app);
  static OccurrenceMap For(const Value* v);

  uint32_t Count(const Variable* v) const {
    auto it = counts_.find(v);
    return it == counts_.end() ? 0 : it->second;
  }

  void Add(const Variable* v, int32_t delta) {
    int64_t c = static_cast<int64_t>(Count(v)) + delta;
    if (c <= 0) {
      counts_.erase(v);
    } else {
      counts_[v] = static_cast<uint32_t>(c);
    }
  }

  /// Add `scale` × (occurrences in `v`) for every variable occurring in `v`.
  void AccumulateValue(const Value* v, int32_t scale);
  void AccumulateApp(const Application* app, int32_t scale);

  size_t num_tracked() const { return counts_.size(); }

 private:
  std::unordered_map<const Variable*, uint32_t> counts_;
};

/// Occurrences of one specific variable in a term — the literal |E|_v of §3.
uint32_t CountOccurrences(const Application* app, const Variable* v);
uint32_t CountOccurrences(const Value* val, const Variable* v);

/// Free variables of a value (variables occurring outside any enclosing
/// binder within the value).  Order of first occurrence is preserved — this
/// is what the reflective optimizer zips against closure-record slots (§4.1).
std::vector<const Variable*> FreeVariables(const Value* v);
std::vector<const Variable*> FreeVariables(const Application* app);

/// True if `v` occurs free in `val` / `app` — drives scoping-sensitive query
/// rules such as trivial-exists (§4.2).
bool OccursFree(const Value* val, const Variable* v);

/// Structural equality modulo α-conversion: binders are paired positionally,
/// free variables and leaves must agree exactly (free vars by node identity
/// when the terms share a module, else by spelling).
bool AlphaEquivalent(const Module& ma, const Value* a, const Module& mb,
                     const Value* b);
bool AlphaEquivalentApp(const Module& ma, const Application* a,
                        const Module& mb, const Application* b);

}  // namespace tml::ir

#endif  // TML_CORE_ANALYSIS_H_
