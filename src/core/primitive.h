// Primitive procedures (paper §2.3, Fig. 2).
//
// TML factors all "real work" (arithmetic, store access, query evaluation)
// into primitive procedures outside the language core.  Each primitive
// carries the four pieces of metadata the paper requires:
//   1. a target-code mapping        -> PrimOp consumed by vm::CodeGen
//   2. a meta-evaluation function   -> Primitive::Fold (constant folding)
//   3. a runtime cost estimate      -> Primitive::CostEstimate
//   4. optimizer attributes         -> effect class, commutativity, flags
//
// New primitives can be registered at back-end compile time
// (PrimitiveRegistry::Register), which is how the query primitives of §4.2
// are added without touching the IR.

#ifndef TML_CORE_PRIMITIVE_H_
#define TML_CORE_PRIMITIVE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace tml::ir {

class Module;
class Application;
class Node;

/// Stable identity of a primitive for switch-based dispatch in the folder,
/// the reference interpreter and the VM code generator.
enum class PrimOp : uint16_t {
  // Integer arithmetic: (p a b ce cc) — ce on overflow / division by zero.
  kAddI,
  kSubI,
  kMulI,
  kDivI,
  kModI,
  // Integer comparison: (p a b c_then c_else).
  kLtI,
  kGtI,
  kLeI,
  kGeI,
  // Bit operations: (p a b c).
  kShl,
  kShr,
  kBitAnd,
  kBitOr,
  kBitXor,
  // Real arithmetic (added per §2.3's extension mechanism; needed for the
  // Stanford programs Mm and Oscar/FFT): (p a b ce cc) resp. (p a b c1 c2).
  kAddR,
  kSubR,
  kMulR,
  kDivR,
  kLtR,
  kLeR,
  kSqrt,       // (sqrt x ce cc)
  kIntToReal,  // (int2real x c)
  kTruncR,     // (real2int x c)
  // Conversions (Fig. 2).
  kChar2Int,
  kInt2Char,
  // Booleans as values (used by query predicates / trivial-exists, §4.2).
  kAnd,  // (and a b c)
  kOr,   // (or a b c)
  kNot,  // (not a c)
  kEqB,  // (beq a b c1 c2) — branch on boolean equality of scalars
  // Aggregates (Fig. 2).
  kArray,         // (array v1..vn c) — mutable array
  kVector,        // (vector v1..vn c) — immutable array
  kMkArray,       // (mkarray n init ce cc) — sized mutable array (§2.3
                  // extension: registered like any new primitive)
  kNewByteArray,  // (new n init c)
  kALoad,         // ([] arr i ce cc)
  kAStore,        // ([]:= arr i v ce cc)
  kBLoad,         // ($[] barr i ce cc)
  kBStore,        // ($[]:= barr i v ce cc)
  kSize,          // (size arr c)
  kMove,          // (move dst dstoff src srcoff n c)
  kBMove,         // ($move dst dstoff src srcoff n c)
  // Control (Fig. 2).
  kCase,         // (== v t1..tn c1..cn [celse]) — identity case analysis
  kY,            // (Y abs) — fixed point of mutually recursive bindings
  kCCall,        // (ccall fname a1..an ce cc) — native call-out
  kPushHandler,  // (pushHandler h c)
  kPopHandler,   // (popHandler c)
  kRaise,        // (raise v)
  // Query primitives (§4.2); relations are OIDs into the store.
  kSelect,   // (select pred rel ce cc) — pred: proc(x ce cc)
  kProject,  // (project fn rel ce cc)
  kQJoin,    // (join pred rel1 rel2 ce cc)
  kExists,   // (exists pred rel ce cc)
  kEmpty,    // (empty rel c) — true iff |rel| == 0
  kQCount,   // (card rel c)
  // Escape hatch for user-registered primitives (dispatch by name).
  kCustom,
};

/// Side-effect classes after Gifford & Lucassen (paper §2.3 item 4).
enum class EffectClass : uint8_t {
  kPure,     ///< no store interaction; freely foldable / removable
  kRead,     ///< reads the store (array load, query over stable relation)
  kWrite,    ///< writes the store
  kAlloc,    ///< allocates (observable via identity only)
  kControl,  ///< transfers control non-locally (raise, handler ops)
};

/// Metadata + behaviour of one primitive procedure.
///
/// Fold() is the paper's `eval` meta-evaluation function: given a call whose
/// arguments allow compile-time evaluation, return a strictly smaller
/// replacement term (usually an application of one of the continuations),
/// else nullptr.
class Primitive {
 public:
  virtual ~Primitive() = default;

  virtual std::string_view name() const = 0;
  virtual PrimOp op() const = 0;

  /// Number of value arguments; -1 for variadic (array, vector, ==, ccall).
  virtual int num_value_args() const = 0;
  /// Number of continuation arguments; -1 for variadic (==).
  virtual int num_cont_args() const = 0;

  virtual EffectClass effect() const = 0;
  virtual bool commutative() const { return false; }

  /// Abstract-machine instruction count for one execution of this call
  /// (paper §2.3 item 3); drives the inlining cost model.
  virtual int CostEstimate(const Application& call) const;

  /// Meta-evaluate `call`; returns the replacement application (allocated in
  /// `m`) or nullptr when no reduction applies (paper §3, rule `fold`).
  virtual const Application* Fold(Module* m, const Application& call) const;

  /// True when `fold` may be attempted on this primitive at all.
  virtual bool foldable() const { return effect() == EffectClass::kPure; }
};

}  // namespace tml::ir

#endif  // TML_CORE_PRIMITIVE_H_
