// Well-formedness checking for TML terms (paper §2.2, constraints 1–5):
//
//   1. Statically visible applications of abstractions pass the right
//      number of arguments, value and continuation sorts in the right order.
//   2. Applications of primitive procedures obey the primitive's calling
//      convention (including the special shapes of `==`, `Y` and `ccall`).
//   3. Continuations do not escape: no continuation variable and no `cont`
//      abstraction appears in a value-argument position.
//   4. Unique binding: every variable is bound at most once, and every
//      occurrence is in the scope of its binder (or declared free).
//   5. Abstractions used as values take exactly two trailing continuation
//      parameters (ce cc) — except the argument of `Y`, whose shape
//      λ(c0 v1..vn c)(c cont()app abs1..absn) is checked structurally.
//
// The compiler front end establishes these properties; the optimizer never
// violates them (§3).  Tests assert the validator after every pass.

#ifndef TML_CORE_VALIDATE_H_
#define TML_CORE_VALIDATE_H_

#include <span>

#include "core/module.h"
#include "core/node.h"
#include "support/status.h"

namespace tml::ir {

struct ValidateOptions {
  /// Variables in `free` are allowed to occur unbound (e.g. the R-value
  /// bindings of §4.1 before wrapping).
  std::span<const Variable* const> free = {};
};

/// Validate a whole program (a proc abstraction).
Status Validate(const Module& m, const Abstraction* prog,
                const ValidateOptions& opts = {});

/// Validate a term with the given variables in scope.
Status ValidateApp(const Module& m, const Application* app,
                   const ValidateOptions& opts = {});

}  // namespace tml::ir

#endif  // TML_CORE_VALIDATE_H_
