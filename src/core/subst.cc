#include "core/subst.h"

#include <vector>

namespace tml::ir {

const Value* SubstituteValue(Module* m, const Value* node, const Variable* v,
                             const Value* val) {
  switch (node->kind()) {
    case NodeKind::kLiteral:
    case NodeKind::kOid:
    case NodeKind::kPrimitive:
      return node;
    case NodeKind::kVariable:
      return node == v ? val : node;
    case NodeKind::kAbstraction: {
      const Abstraction* abs = Cast<Abstraction>(node);
      const Application* body = Substitute(m, abs->body(), v, val);
      if (body == abs->body()) return node;  // share unchanged subtree
      return m->Abs(abs->params(), body);
    }
    case NodeKind::kApplication:
      return node;  // unreachable
  }
  return node;
}

const Application* Substitute(Module* m, const Application* app,
                              const Variable* v, const Value* val) {
  bool changed = false;
  std::vector<const Value*> elems;
  elems.reserve(app->num_args() + 1);
  const Value* callee = SubstituteValue(m, app->callee(), v, val);
  changed |= (callee != app->callee());
  elems.push_back(callee);
  for (const Value* a : app->args()) {
    const Value* na = SubstituteValue(m, a, v, val);
    changed |= (na != a);
    elems.push_back(na);
  }
  if (!changed) return app;
  return m->AppWith(*app, std::move(elems));
}

}  // namespace tml::ir
