// ir::Module — the owner of one TML term graph.
//
// A Module bundles the arena that all nodes of a term live in, the interner
// for identifier spellings, and the fresh-uid counter that implements the
// α-conversion of the paper (every binder gets a unique numeric suffix, so
// the unique-binding rule of §2.2 holds by construction).

#ifndef TML_CORE_MODULE_H_
#define TML_CORE_MODULE_H_

#include <initializer_list>
#include <string_view>
#include <vector>

#include "core/node.h"
#include "support/arena.h"
#include "support/interner.h"

namespace tml::ir {

class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // ---- Leaf factories ------------------------------------------------

  const Literal* NilLit() { return NewNode<Literal>(); }
  const Literal* BoolLit(bool b) { return NewNode<Literal>(b); }
  const Literal* IntLit(int64_t i) { return NewNode<Literal>(i); }
  const Literal* CharLit(uint8_t c) { return NewNode<Literal>(c); }
  const Literal* RealLit(double r) { return NewNode<Literal>(r); }
  const Literal* StringLit(std::string_view s) {
    const char* copy = arena_.StrDup(s.data(), s.size());
    return NewNode<Literal>(copy, s.size());
  }
  /// Clone a literal (possibly from another module) into this arena.
  const Literal* CloneLit(const Literal& lit);

  const OidRef* OidVal(Oid oid) { return NewNode<OidRef>(oid); }

  const PrimRef* Prim(const Primitive* prim) {
    return NewNode<PrimRef>(prim);
  }

  /// A fresh variable; the uid suffix makes it distinct from all others.
  Variable* NewVar(std::string_view name, VarSort sort) {
    return NewNode<Variable>(interner_.Intern(name), next_uid_++, sort);
  }
  Variable* NewValueVar(std::string_view name) {
    return NewVar(name, VarSort::kValue);
  }
  Variable* NewContVar(std::string_view name) {
    return NewVar(name, VarSort::kCont);
  }
  /// A fresh copy of `v` (same spelling/sort, new uid) for α-renaming.
  Variable* FreshCopy(const Variable& v) {
    return NewNode<Variable>(interner_.Intern(NameOf(v)), next_uid_++,
                             v.sort());
  }

  // ---- Composite factories -------------------------------------------

  /// λ(params) body.  `params` must list value variables before continuation
  /// variables; the split is derived from the variable sorts.
  const Abstraction* Abs(std::span<Variable* const> params,
                         const Application* body);
  const Abstraction* Abs(std::initializer_list<Variable*> params,
                         const Application* body) {
    return Abs(std::span<Variable* const>(params.begin(), params.size()),
               body);
  }

  const Application* App(const Value* callee,
                         std::span<const Value* const> args);
  const Application* App(const Value* callee,
                         std::initializer_list<const Value*> args) {
    return App(callee,
               std::span<const Value* const>(args.begin(), args.size()));
  }

  /// Rebuild `app` with a different argument vector (callee kept).
  const Application* AppWith(const Application& app,
                             std::vector<const Value*> elems);

  // ---- Identifier spelling -------------------------------------------

  std::string_view NameOf(const Variable& v) const {
    return interner_.Name(v.name());
  }
  Interner* interner() { return &interner_; }

  /// Deep-copy `abs` into this module with entirely fresh binders
  /// (α-conversion); free variables are remapped via `free_map` when
  /// present, else kept as-is (shared pointers).  Used by the expansion
  /// pass to inline a multiply-referenced procedure without violating the
  /// unique-binding rule.
  const Abstraction* AlphaClone(const Abstraction& abs);

  /// Deep-copy a value that may originate in another Module into this one.
  /// Free variables must be mapped by the caller via `import_map`.
  const Value* Import(const Value& v,
                      std::vector<std::pair<const Variable*, const Value*>>*
                          import_map);

  Arena* arena() { return &arena_; }
  size_t bytes_used() const { return arena_.bytes_used(); }
  uint32_t next_uid() const { return next_uid_; }

 private:
  /// Placement-construct a node in the arena.  Module is a friend of every
  /// node class, so the private constructors are reachable from here.
  template <typename T, typename... Args>
  T* NewNode(Args&&... args) {
    void* mem = arena_.Allocate(sizeof(T), alignof(T));
    return new (mem) T(std::forward<Args>(args)...);
  }

  const Value* CloneValue(
      const Value* v,
      std::vector<std::pair<const Variable*, Variable*>>* map);
  const Application* CloneApp(
      const Application* app,
      std::vector<std::pair<const Variable*, Variable*>>* map);

  Arena arena_;
  Interner interner_;
  uint32_t next_uid_ = 1;
};

/// Total node positions in a term (occurrences count once per position).
size_t TermSize(const Application* app);
size_t ValueSize(const Value* v);

}  // namespace tml::ir

#endif  // TML_CORE_MODULE_H_
