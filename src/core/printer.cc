#include "core/printer.h"

#include <cstdio>

#include "core/primitive.h"

namespace tml::ir {

namespace {

class Printer {
 public:
  Printer(const Module& m, const PrintOptions& opts) : m_(m), opts_(opts) {}

  void Value(const ir::Value* v, int depth) {
    switch (v->kind()) {
      case NodeKind::kLiteral:
        Lit(*Cast<Literal>(v));
        return;
      case NodeKind::kOid: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "<oid 0x%08llx>",
                      static_cast<unsigned long long>(Cast<OidRef>(v)->oid()));
        out_ += buf;
        return;
      }
      case NodeKind::kVariable:
        Var(*Cast<Variable>(v));
        return;
      case NodeKind::kPrimitive:
        out_ += Cast<PrimRef>(v)->prim().name();
        return;
      case NodeKind::kAbstraction:
        Abs(*Cast<Abstraction>(v), depth);
        return;
      case NodeKind::kApplication:
        out_ += "<bad-node>";
        return;
    }
  }

  void Abs(const Abstraction& abs, int depth) {
    out_ += abs.is_cont() ? "cont(" : "proc(";
    bool first = true;
    for (const Variable* p : abs.params()) {
      if (!first) out_ += ' ';
      first = false;
      // `^` marks continuation-sort parameters so the printed form
      // re-parses with identical sorts (see parser.h).
      if (p->is_cont() && opts_.explicit_sorts) out_ += '^';
      Var(*p);
    }
    out_ += ")";
    Newline(depth + 1);
    App(abs.body(), depth + 1);
  }

  void App(const Application* app, int depth) {
    out_ += '(';
    Value(app->callee(), depth);
    for (const ir::Value* a : app->args()) {
      if (Isa<Abstraction>(a)) {
        Newline(depth + 1);
      } else {
        out_ += ' ';
      }
      Value(a, depth + 1);
    }
    out_ += ')';
  }

  std::string Take() { return std::move(out_); }

 private:
  void Var(const Variable& v) {
    out_ += m_.NameOf(v);
    if (opts_.uid_suffix) {
      out_ += '_';
      out_ += std::to_string(v.uid());
    }
  }

  void Lit(const Literal& lit) {
    char buf[64];
    switch (lit.lit_kind()) {
      case LitKind::kNil:
        out_ += "nil";
        return;
      case LitKind::kBool:
        out_ += lit.bool_value() ? "true" : "false";
        return;
      case LitKind::kInt:
        out_ += std::to_string(lit.int_value());
        return;
      case LitKind::kChar:
        std::snprintf(buf, sizeof(buf), "'%c'", lit.char_value());
        out_ += buf;
        return;
      case LitKind::kReal:
        std::snprintf(buf, sizeof(buf), "%g", lit.real_value());
        if (std::string_view(buf).find_first_of(".eE") ==
            std::string_view::npos) {
          std::snprintf(buf, sizeof(buf), "%.1f", lit.real_value());
        }
        out_ += buf;
        return;
      case LitKind::kString:
        out_ += '"';
        out_ += lit.string_value();
        out_ += '"';
        return;
    }
  }

  void Newline(int depth) {
    out_ += '\n';
    out_.append(static_cast<size_t>(depth * opts_.indent), ' ');
  }

  const Module& m_;
  const PrintOptions& opts_;
  std::string out_;
};

}  // namespace

std::string PrintValue(const Module& m, const Value* v,
                       const PrintOptions& opts) {
  Printer p(m, opts);
  p.Value(v, 0);
  return p.Take();
}

std::string PrintApp(const Module& m, const Application* app,
                     const PrintOptions& opts) {
  Printer p(m, opts);
  p.App(app, 0);
  return p.Take();
}

}  // namespace tml::ir
