#include "core/primitive.h"

namespace tml::ir {

int Primitive::CostEstimate(const Application& call) const {
  (void)call;
  return 2;
}

const Application* Primitive::Fold(Module* m, const Application& call) const {
  (void)m;
  (void)call;
  return nullptr;
}

}  // namespace tml::ir
