#include "core/analysis.h"

#include <cassert>

namespace tml::ir {

void OccurrenceMap::AccumulateValue(const Value* v, int32_t scale) {
  switch (v->kind()) {
    case NodeKind::kLiteral:
    case NodeKind::kOid:
    case NodeKind::kPrimitive:
      return;
    case NodeKind::kVariable:
      Add(Cast<Variable>(v), scale);
      return;
    case NodeKind::kAbstraction:
      AccumulateApp(Cast<Abstraction>(v)->body(), scale);
      return;
    case NodeKind::kApplication:
      assert(false && "application in value position");
      return;
  }
}

void OccurrenceMap::AccumulateApp(const Application* app, int32_t scale) {
  AccumulateValue(app->callee(), scale);
  for (const Value* a : app->args()) AccumulateValue(a, scale);
}

OccurrenceMap OccurrenceMap::For(const Application* app) {
  OccurrenceMap m;
  m.AccumulateApp(app, 1);
  return m;
}

OccurrenceMap OccurrenceMap::For(const Value* v) {
  OccurrenceMap m;
  m.AccumulateValue(v, 1);
  return m;
}

uint32_t CountOccurrences(const Value* val, const Variable* v) {
  switch (val->kind()) {
    case NodeKind::kLiteral:
    case NodeKind::kOid:
    case NodeKind::kPrimitive:
      return 0;
    case NodeKind::kVariable:
      return val == v ? 1u : 0u;
    case NodeKind::kAbstraction:
      return CountOccurrences(Cast<Abstraction>(val)->body(), v);
    case NodeKind::kApplication:
      assert(false && "application in value position");
      return 0;
  }
  return 0;
}

uint32_t CountOccurrences(const Application* app, const Variable* v) {
  uint32_t n = CountOccurrences(app->callee(), v);
  for (const Value* a : app->args()) n += CountOccurrences(a, v);
  return n;
}

namespace {

void CollectFree(const Value* v,
                 std::unordered_set<const Variable*>* bound,
                 std::unordered_set<const Variable*>* seen,
                 std::vector<const Variable*>* out);

void CollectFreeApp(const Application* app,
                    std::unordered_set<const Variable*>* bound,
                    std::unordered_set<const Variable*>* seen,
                    std::vector<const Variable*>* out) {
  CollectFree(app->callee(), bound, seen, out);
  for (const Value* a : app->args()) CollectFree(a, bound, seen, out);
}

void CollectFree(const Value* v,
                 std::unordered_set<const Variable*>* bound,
                 std::unordered_set<const Variable*>* seen,
                 std::vector<const Variable*>* out) {
  switch (v->kind()) {
    case NodeKind::kLiteral:
    case NodeKind::kOid:
    case NodeKind::kPrimitive:
      return;
    case NodeKind::kVariable: {
      const Variable* var = Cast<Variable>(v);
      if (bound->count(var) == 0 && seen->insert(var).second) {
        out->push_back(var);
      }
      return;
    }
    case NodeKind::kAbstraction: {
      const Abstraction* abs = Cast<Abstraction>(v);
      // Unique binding: params cannot shadow, so a flat set suffices.
      for (const Variable* p : abs->params()) bound->insert(p);
      CollectFreeApp(abs->body(), bound, seen, out);
      return;
    }
    case NodeKind::kApplication:
      assert(false && "application in value position");
      return;
  }
}

}  // namespace

std::vector<const Variable*> FreeVariables(const Value* v) {
  std::unordered_set<const Variable*> bound, seen;
  std::vector<const Variable*> out;
  CollectFree(v, &bound, &seen, &out);
  return out;
}

std::vector<const Variable*> FreeVariables(const Application* app) {
  std::unordered_set<const Variable*> bound, seen;
  std::vector<const Variable*> out;
  CollectFreeApp(app, &bound, &seen, &out);
  return out;
}

namespace {

struct AlphaCtx {
  const Module& ma;
  const Module& mb;
  std::vector<std::pair<const Variable*, const Variable*>> pairs;

  bool VarsMatch(const Variable* a, const Variable* b) const {
    for (auto it = pairs.rbegin(); it != pairs.rend(); ++it) {
      if (it->first == a || it->second == b) {
        return it->first == a && it->second == b;
      }
    }
    // Both free: same node, or same spelling across modules.
    if (a == b) return true;
    return ma.NameOf(*a) == mb.NameOf(*b) && a->sort() == b->sort();
  }
};

bool AlphaEqValue(AlphaCtx* ctx, const Value* a, const Value* b);

bool AlphaEqApp(AlphaCtx* ctx, const Application* a, const Application* b) {
  if (a->num_args() != b->num_args()) return false;
  if (!AlphaEqValue(ctx, a->callee(), b->callee())) return false;
  for (size_t i = 0; i < a->num_args(); ++i) {
    if (!AlphaEqValue(ctx, a->arg(i), b->arg(i))) return false;
  }
  return true;
}

bool AlphaEqValue(AlphaCtx* ctx, const Value* a, const Value* b) {
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case NodeKind::kLiteral:
      return LiteralEquals(*Cast<Literal>(a), *Cast<Literal>(b));
    case NodeKind::kOid:
      return Cast<OidRef>(a)->oid() == Cast<OidRef>(b)->oid();
    case NodeKind::kPrimitive:
      return &Cast<PrimRef>(a)->prim() == &Cast<PrimRef>(b)->prim();
    case NodeKind::kVariable:
      return ctx->VarsMatch(Cast<Variable>(a), Cast<Variable>(b));
    case NodeKind::kAbstraction: {
      const Abstraction* aa = Cast<Abstraction>(a);
      const Abstraction* ab = Cast<Abstraction>(b);
      if (aa->num_params() != ab->num_params()) return false;
      size_t base = ctx->pairs.size();
      for (size_t i = 0; i < aa->num_params(); ++i) {
        if (aa->param(i)->sort() != ab->param(i)->sort()) return false;
        ctx->pairs.emplace_back(aa->param(i), ab->param(i));
      }
      bool eq = AlphaEqApp(ctx, aa->body(), ab->body());
      ctx->pairs.resize(base);
      return eq;
    }
    case NodeKind::kApplication:
      return false;
  }
  return false;
}

}  // namespace

bool AlphaEquivalent(const Module& ma, const Value* a, const Module& mb,
                     const Value* b) {
  AlphaCtx ctx{ma, mb, {}};
  return AlphaEqValue(&ctx, a, b);
}

bool AlphaEquivalentApp(const Module& ma, const Application* a,
                        const Module& mb, const Application* b) {
  AlphaCtx ctx{ma, mb, {}};
  return AlphaEqApp(&ctx, a, b);
}

bool OccursFree(const Value* val, const Variable* v) {
  // With unique binding, any occurrence is a free occurrence unless v is a
  // parameter of an abstraction *inside* val — impossible, since a variable
  // is bound exactly once and occurrences sit under their binder.
  return CountOccurrences(val, v) > 0;
}

}  // namespace tml::ir
