// Registry of primitive procedures, keyed by name and by PrimOp.
//
// The standard Fig. 2 set is installed by prims::RegisterStandard(); callers
// may register additional primitives at back-end compile time (§2.3) — this
// is how the §4.2 query primitives and any domain-specific bulk operations
// are added.

#ifndef TML_CORE_PRIMITIVE_REGISTRY_H_
#define TML_CORE_PRIMITIVE_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/primitive.h"
#include "support/status.h"

namespace tml::ir {

class PrimitiveRegistry {
 public:
  /// Register a primitive; fails on duplicate name.
  Status Register(std::unique_ptr<Primitive> prim) {
    std::string name(prim->name());
    if (by_name_.count(name) != 0) {
      return Status::AlreadyExists("primitive already registered: " + name);
    }
    const Primitive* p = prim.get();
    owned_.push_back(std::move(prim));
    by_name_.emplace(std::move(name), p);
    if (p->op() != PrimOp::kCustom) by_op_.emplace(p->op(), p);
    return Status::OK();
  }

  const Primitive* LookupName(std::string_view name) const {
    auto it = by_name_.find(std::string(name));
    return it == by_name_.end() ? nullptr : it->second;
  }

  const Primitive* LookupOp(PrimOp op) const {
    auto it = by_op_.find(op);
    return it == by_op_.end() ? nullptr : it->second;
  }

  /// All registered primitives, in registration order.
  std::vector<const Primitive*> All() const {
    std::vector<const Primitive*> out;
    out.reserve(owned_.size());
    for (const auto& p : owned_) out.push_back(p.get());
    return out;
  }

 private:
  struct OpHash {
    size_t operator()(PrimOp op) const {
      return static_cast<size_t>(op);
    }
  };

  std::vector<std::unique_ptr<Primitive>> owned_;
  std::unordered_map<std::string, const Primitive*> by_name_;
  std::unordered_map<PrimOp, const Primitive*, OpHash> by_op_;
};

}  // namespace tml::ir

#endif  // TML_CORE_PRIMITIVE_REGISTRY_H_
