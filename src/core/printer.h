// Pretty printer producing the paper's TML notation (§2.2, §4.1):
//
//   proc(c_10 c_11)
//   (λ(complex_6 x_7 +_8 sqrt_9)
//    (complex_6 x_7 2 cont(t_12)
//     (t_12 c_10 cont(t_13)
//      ...)))
//
// Variables print as `name_uid` (the α-conversion suffix), abstractions as
// `cont(..)` when they take no continuation parameters and `proc(..)`
// otherwise, object identifiers as `<oid 0x...>`.

#ifndef TML_CORE_PRINTER_H_
#define TML_CORE_PRINTER_H_

#include <string>

#include "core/module.h"
#include "core/node.h"

namespace tml::ir {

struct PrintOptions {
  /// Print `name_uid`; with false, just `name` (compact docs/examples).
  bool uid_suffix = true;
  /// Prefix continuation-sort parameters with `^` so that the printed form
  /// re-parses with identical variable sorts.  Disable for the pure paper
  /// notation in documentation output.
  bool explicit_sorts = true;
  /// Spaces per nesting level.
  int indent = 1;
};

std::string PrintValue(const Module& m, const Value* v,
                       const PrintOptions& opts = {});
std::string PrintApp(const Module& m, const Application* app,
                     const PrintOptions& opts = {});

}  // namespace tml::ir

#endif  // TML_CORE_PRINTER_H_
