// A small blocking client for the tyd wire protocol — the shared substrate
// of tools/tyccli, bench/bench_server and the server test suites.
//
// One Client is one connection; it is not thread-safe.  Pipelining is
// explicit: Send() any number of frames, then Recv() the same number of
// responses (the server answers strictly in order).  Call() is the
// unpipelined convenience wrapper (one Send + one Recv).
//
// Resilience: the client remembers its connect target and, when
// ClientOptions::max_retries > 0, Call() recovers from transport failures
// (reset, refused reconnect, torn reply) by reconnecting under capped
// exponential backoff with deterministic jitter — but only for commands
// on the idempotent list (PING / LOOKUP / QUERY / STATS / METRICS /
// OBSERVE / PROFILE).  A non-idempotent command (INSTALL, CALL, ...)
// whose reply is lost may or may not have executed, so it is never
// retried; the transport error surfaces to the caller.  An ERR frame is
// a *successful* round-trip and is never retried either.

#ifndef TML_SERVER_CLIENT_H_
#define TML_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "server/protocol.h"
#include "support/status.h"

namespace tml::server {

struct ClientOptions {
  /// Reconnect-and-retry attempts for idempotent Call()s after a
  /// transport failure.  0 disables all retry (the seed behavior).
  int max_retries = 0;
  /// First backoff sleep; doubles per attempt.
  uint64_t base_backoff_ms = 10;
  /// Backoff cap.
  uint64_t max_backoff_ms = 1000;
  /// Jitter seed: sleeps are backoff/2 + splitmix64(seed, attempt) % backoff/2,
  /// so two clients with different seeds never thunder in lockstep and a
  /// test with a fixed seed replays exactly.
  uint64_t seed = 1;
};

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  static Result<Client> ConnectUnix(const std::string& path,
                                    ClientOptions opts = {});
  static Result<Client> ConnectTcp(const std::string& host, int port,
                                   ClientOptions opts = {});

  bool connected() const { return fd_ >= 0; }
  /// Raw socket fd (chaos tests use this to misbehave on purpose).
  int fd() const { return fd_; }
  void Close();

  /// Drop and re-dial the remembered target (used by the retry loop;
  /// public so tests and tools can force a fresh connection).
  Status Reconnect();

  /// Queue-and-write one request frame (blocking until written).
  Status Send(const WireValue& request);
  /// Read one response frame (blocking).
  Result<WireValue> Recv();
  /// Send + Recv, with transparent reconnect/retry for idempotent
  /// commands when opts.max_retries > 0.
  Result<WireValue> Call(const WireValue& request);
  /// Convenience: command + string arguments.
  Result<WireValue> Call(const std::vector<std::string>& words);

  /// Transport-level reconnects performed by the retry loop so far.
  uint64_t reconnects() const { return reconnects_; }

 private:
  Status Dial();
  Result<WireValue> CallOnce(const WireValue& request);
  void BackoffSleep(int attempt);

  int fd_ = -1;
  std::string rdbuf_;  ///< bytes read but not yet consumed as frames
  ClientOptions opts_;
  // Remembered target (is_unix_ selects which fields apply).
  bool is_unix_ = false;
  std::string target_path_;  ///< unix path, or tcp host
  int target_port_ = -1;
  uint64_t reconnects_ = 0;
};

}  // namespace tml::server

#endif  // TML_SERVER_CLIENT_H_
