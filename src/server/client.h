// A small blocking client for the tyd wire protocol — the shared substrate
// of tools/tyccli, bench/bench_server and the server test suites.
//
// One Client is one connection; it is not thread-safe.  Pipelining is
// explicit: Send() any number of frames, then Recv() the same number of
// responses (the server answers strictly in order).  Call() is the
// unpipelined convenience wrapper (one Send + one Recv).

#ifndef TML_SERVER_CLIENT_H_
#define TML_SERVER_CLIENT_H_

#include <string>
#include <vector>

#include "server/protocol.h"
#include "support/status.h"

namespace tml::server {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  static Result<Client> ConnectUnix(const std::string& path);
  static Result<Client> ConnectTcp(const std::string& host, int port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Queue-and-write one request frame (blocking until written).
  Status Send(const WireValue& request);
  /// Read one response frame (blocking).
  Result<WireValue> Recv();
  /// Send + Recv.
  Result<WireValue> Call(const WireValue& request);
  /// Convenience: command + string arguments.
  Result<WireValue> Call(const std::vector<std::string>& words);

 private:
  int fd_ = -1;
  std::string rdbuf_;  ///< bytes read but not yet consumed as frames
};

}  // namespace tml::server

#endif  // TML_SERVER_CLIENT_H_
