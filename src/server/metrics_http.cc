#include "server/metrics_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "runtime/universe.h"
#include "server/server.h"
#include "telemetry/flight.h"
#include "telemetry/metrics.h"
#include "telemetry/prometheus.h"

namespace tml::server {

namespace {

std::string HttpResponse(int code, const char* reason,
                         const char* content_type, const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + reason + "\r\n";
  out += "Content-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size()) +
         "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

/// Parse "?window=SECONDS" off a /flight path; 0 = full retained window.
uint64_t FlightWindowNs(const std::string& path) {
  size_t q = path.find("?window=");
  if (q == std::string::npos) return 0;
  uint64_t secs = std::strtoull(path.c_str() + q + 8, nullptr, 10);
  return secs * 1'000'000'000ull;
}

}  // namespace

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

Status MetricsHttpServer::Start(const std::string& host, int port) {
  if (started_) return Status::AlreadyExists("metrics http: already started");
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::Invalid("metrics http: bad host " + host);
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      listen(fd, 16) < 0) {
    Status st = Status::IOError(std::string("bind/listen ") + host + ":" +
                                std::to_string(port) + ": " +
                                std::strerror(errno));
    close(fd);
    return st;
  }
  socklen_t len = sizeof addr;
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  started_ = true;
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void MetricsHttpServer::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  started_ = false;
}

void MetricsHttpServer::Loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd p{listen_fd_, POLLIN, 0};
    int n = poll(&p, 1, 100);
    if (n <= 0) continue;
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // Serving is synchronous: scrape endpoints are cheap (a registry
    // snapshot, a ring dump) and a one-thread listener cannot be wedged
    // into unbounded concurrency by a misbehaving scraper.
    ServeOne(fd);
    close(fd);
  }
}

void MetricsHttpServer::ServeOne(int fd) const {
  // Bound the read size, the per-recv wait, AND the whole request: the
  // per-recv SO_RCVTIMEO alone still lets a scraper trickle one byte
  // every <2s and wedge the single-threaded listener for as long as it
  // cares to keep dribbling.  An overall wall-clock deadline closes that
  // hole — no request may take longer than 2s end to end, period.
  timeval tv{2, 0};
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  std::string req;
  char buf[4096];
  while (req.size() < 16 * 1024 && req.find("\r\n\r\n") == std::string::npos) {
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) return;  // trickling scraper: drop, don't serve
    pollfd p{fd, POLLIN, 0};
    int pn = poll(&p, 1, static_cast<int>(left.count()));
    if (pn <= 0) {
      if (pn < 0 && errno == EINTR) continue;
      return;
    }
    ssize_t n = recv(fd, buf, sizeof buf, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    req.append(buf, static_cast<size_t>(n));
  }
  size_t eol = req.find("\r\n");
  std::string line = eol == std::string::npos ? req : req.substr(0, eol);
  std::string method, path;
  size_t sp1 = line.find(' ');
  if (sp1 != std::string::npos) {
    method = line.substr(0, sp1);
    size_t sp2 = line.find(' ', sp1 + 1);
    path = sp2 == std::string::npos ? line.substr(sp1 + 1)
                                    : line.substr(sp1 + 1, sp2 - sp1 - 1);
  }
  std::string resp;
  if (method != "GET") {
    resp = HttpResponse(405, "Method Not Allowed", "text/plain",
                        "only GET is supported\n");
  } else {
    resp = Respond(path);
  }
  size_t off = 0;
  // The same overall deadline bounds the write side: a scraper that
  // stops reading mid-response gets cut, not serviced byte by byte.
  while (off < resp.size() && std::chrono::steady_clock::now() < deadline) {
    ssize_t n = send(fd, resp.data() + off, resp.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    off += static_cast<size_t>(n);
  }
}

std::string MetricsHttpServer::Respond(const std::string& path) const {
  if (path == "/metrics") {
    telemetry::RefreshObservabilityGauges();
    std::string body =
        telemetry::FormatPrometheus(telemetry::Registry::Global().Snapshot());
    return HttpResponse(200, "OK", "text/plain; version=0.0.4", body);
  }
  if (path == "/healthz") {
    return HttpResponse(200, "OK", "text/plain", "ok\n");
  }
  if (path == "/profile") {
    std::string body = universe_ == nullptr ? "{}" : universe_->ProfileJson();
    return HttpResponse(200, "OK", "application/json", body);
  }
  if (path == "/flight" || path.rfind("/flight?", 0) == 0) {
    std::string body = telemetry::FlightRecorder::Global().DumpChromeJson(
        FlightWindowNs(path));
    return HttpResponse(200, "OK", "application/json", body);
  }
  if (path == "/slow") {
    std::string body = server_ == nullptr ? "[]" : server_->SlowRequestsJson();
    return HttpResponse(200, "OK", "application/json", body);
  }
  return HttpResponse(404, "Not Found", "text/plain",
                      "endpoints: /metrics /healthz /profile /flight /slow\n");
}

}  // namespace tml::server
