// Tycoon-as-a-service: the network front end over a shared persistent
// universe (ROADMAP item 1; DESIGN.md §10).
//
// One Server wraps one Universe.  Clients connect over TCP and/or a Unix
// socket and speak the tagged binary protocol of server/protocol.h.  The
// paper's §4.1 payoff carries to the wire: a server-side function
// reflect-optimized once — explicitly via OPTIMIZE or in the background by
// the AdaptiveManager — is served optimized to every connected client from
// the persistent code cache after the SwapCode.
//
// Architecture (threads):
//
//   loop thread      single-threaded epoll (poll(2) fallback) event loop:
//                    accepts, reads, frame decode, response write-back.
//                    Never executes TML code.
//   worker threads   N dispatch workers, each owning one AddWorkerVm() VM.
//                    A worker executes one session's request batch at a
//                    time (program order within a session is preserved;
//                    different sessions run in parallel over the shared
//                    lock-free binding snapshot).
//
// Pipelining: the loop drains every complete frame per readiness event and
// hands the whole run to a worker as one batch; responses come back as one
// pre-encoded byte string and are written in request order.  While a batch
// is in flight further frames queue on the session and dispatch as the
// next batch — so a client streaming K requests pays ~2 scheduling
// round-trips, not K.
//
// Shutdown: Stop() (async-signal-safe — tycd calls it from the SIGTERM
// handler) closes the listeners, lets in-flight and already-received
// requests finish, flushes their responses, joins the workers, stops the
// universe's adopted background services, and commits the store — a
// SIGTERM'd server never relies on salvage recovery.

#ifndef TML_SERVER_SERVER_H_
#define TML_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/universe.h"
#include "server/protocol.h"
#include "support/net.h"
#include "support/status.h"

namespace tml::server {

/// Readiness-notification seam (epoll on Linux, poll(2) fallback);
/// defined in server.cc.
class PollerIface;

struct ServerOptions {
  /// Unix-domain listener path; empty disables the Unix listener.
  std::string unix_path;
  /// TCP listener; port < 0 disables, port 0 binds an ephemeral port
  /// (read it back with Server::tcp_port()).
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;
  /// Dispatch worker threads (each owns one AddWorkerVm() VM).
  int workers = 2;
  /// Default per-session CALL/QUERY step budget (0 = unlimited); sessions
  /// adjust their own with the BUDGET command.
  uint64_t default_step_budget = 100'000'000;
  /// Force the portable poll(2) loop even where epoll is available (the
  /// fallback path stays tested).
  bool use_poll = false;
  /// Frame size bound handed to the decoder (tests shrink it).
  uint32_t max_frame = kMaxFrameLen;
  /// Requests at least this slow (wall microseconds) enter the worst-
  /// offender slow-request log (STATS SLOW) and emit a flight-recorder
  /// instant event.  0 logs nothing.
  uint64_t slow_request_us = 10'000;
  /// Worst offenders retained in the slow-request log.
  size_t slow_log_size = 16;

  // ---- resilience & limits (DESIGN.md §13) ----

  /// Admission control: a connect while this many sessions are open is
  /// answered with one clean ERR_OVERLOAD frame and closed immediately
  /// (tml.server.shed_total counts them).  0 = unlimited.
  size_t max_sessions = 0;
  /// Backpressure: once a session has this many parsed requests queued
  /// behind its in-flight batch, the loop stops reading its socket
  /// (EPOLLIN disarm) until the batch completes and the queue drains —
  /// the client's sends back up in its kernel buffer instead of growing
  /// server memory.  0 = unlimited.
  size_t max_queued_batches = 0;
  /// Backpressure on raw bytes: a session whose unframed input buffer
  /// exceeds this also stops being read.  0 = unlimited.
  size_t max_session_buffer = 0;
  /// Per-request wall-clock deadline in milliseconds, enforced inside the
  /// VM through the step-budget polling seam (a slow-but-cheap request
  /// cannot pin a worker); sessions adjust their own with the DEADLINE
  /// command.  Exceeding it answers ERR_DEADLINE.  0 = none.
  uint64_t default_deadline_ms = 0;
  /// Default per-session VM heap budget in bytes (ERR_OOM past it);
  /// sessions adjust their own with BUDGET MEM <bytes>.  0 = unlimited.
  uint64_t default_heap_budget = 0;
  /// Close sessions with no traffic and nothing in flight after this many
  /// milliseconds.  0 = never.
  uint64_t idle_timeout_ms = 0;
  /// Slowloris guard: close sessions that sit on an incomplete frame (or
  /// an unflushed response the peer won't read) longer than this many
  /// milliseconds.  0 = never.
  uint64_t read_timeout_ms = 0;
  /// Socket I/O seam; null uses Net::Default(), which honors the
  /// TYCOON_NETFAULT_* chaos knobs.  Must outlive the server.
  Net* net = nullptr;
};

class Server {
 public:
  /// The universe must outlive the server.  The server adds its worker
  /// VMs to the universe at Start().
  Server(rt::Universe* universe, ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind listeners and launch the loop + worker threads.
  Status Start();

  /// Request graceful shutdown.  Async-signal-safe (one atomic store and
  /// one write(2) to the wake pipe); idempotent.  Does not block — use
  /// Join() to wait for the drain to finish.
  void Stop();

  /// Wait until the loop and workers have exited.  After Join() the
  /// store has been committed and adopted background services stopped.
  void Join();

  /// Actual TCP port after Start() (for tcp_port = 0).
  int tcp_port() const { return tcp_port_; }

  /// Connections currently open (loop-thread owned; approximate when read
  /// from other threads).
  size_t active_sessions() const {
    return active_sessions_.load(std::memory_order_relaxed);
  }

  /// The slow-request log as a JSON array of {cmd,us,ts_ns,session}
  /// objects, worst first (the STATS SLOW command and tools read this).
  std::string SlowRequestsJson() const;

 private:
  struct Session;

  /// A session's adjustable execution limits; travels with each batch and
  /// back with its completion (the BUDGET / DEADLINE commands mutate it).
  struct SessionLimits {
    uint64_t step_budget = 0;   ///< per-run VM step budget (BUDGET <n>)
    uint64_t heap_budget = 0;   ///< per-VM heap bytes (BUDGET MEM <n>)
    uint64_t deadline_ms = 0;   ///< per-request wall clock (DEADLINE <ms>)
  };

  /// One dispatched unit: a session's drained request batch, executed by
  /// a worker in order on its private VM.
  struct Job {
    uint64_t session_id = 0;
    std::vector<WireValue> requests;
    SessionLimits limits;
    uint64_t enqueue_ns = 0;  ///< Tracer::NowNs() at dispatch (queue wait)
  };

  /// What a worker hands back to the loop thread.
  struct Completion {
    uint64_t session_id = 0;
    std::string bytes;       ///< pre-encoded response frames, in order
    SessionLimits limits;    ///< session limits after the batch
    bool shutdown = false;   ///< batch contained SHUTDOWN
  };

  // ---- loop thread ----
  void LoopThread();
  void HandleAccept(int listen_fd);
  void HandleReadable(Session* s);
  void HandleWritable(Session* s);
  void DrainCompletions();
  void DispatchIfReady(Session* s);
  void FlushOut(Session* s);
  /// Arm or disarm read interest from the session's queue depth and
  /// buffer size (see max_queued_batches / max_session_buffer).
  void UpdateReadInterest(Session* s);
  /// Idle / slow-read (slowloris) / write-stall sweep, run from the poll
  /// loop's Wait() tick.
  void SweepTimeouts(uint64_t now_ns);
  /// Close the fd and mark the session dead.  The object is reaped later
  /// by ReapDeadSessions() (never mid-event: handlers hold Session*).
  void CloseSession(uint64_t id);
  void ReapDeadSessions();
  bool AllDrained() const;

  // ---- worker threads ----
  void WorkerThread(int index);
  Completion RunBatch(vm::VM* vm, Job job);
  WireValue Execute(vm::VM* vm, const WireValue& req, SessionLimits* limits,
                    bool* shutdown);

  // Command handlers (worker threads; `vm` is the worker's private VM).
  WireValue CmdInstall(const std::vector<WireValue>& a);
  WireValue CmdLookup(const std::vector<WireValue>& a);
  WireValue CmdCall(vm::VM* vm, const std::vector<WireValue>& a,
                    const SessionLimits& limits);
  WireValue CmdCallOid(vm::VM* vm, const std::vector<WireValue>& a,
                       const SessionLimits& limits);
  WireValue CmdOptimize(const std::vector<WireValue>& a);
  WireValue CmdRelStore(const std::vector<WireValue>& a);
  WireValue CmdQuery(vm::VM* vm, const std::vector<WireValue>& a,
                     const SessionLimits& limits);
  WireValue CmdStats(const std::vector<WireValue>& a);
  WireValue CmdObserve(const std::vector<WireValue>& a);
  WireValue CmdMetrics(const std::vector<WireValue>& a);

  /// Run a closure on `vm` under the session's limits and translate the
  /// outcome (value / raise / budget / OOM / deadline / VM error) to a
  /// wire value.
  WireValue RunToWire(vm::VM* vm, Oid closure, std::span<const vm::Value> args,
                      const SessionLimits& limits);

  /// Record one request into the slow-request log if it crossed the
  /// slow_request_us threshold (worst `slow_log_size` kept, sorted).
  void NoteSlow(const char* cmd, uint64_t us, uint64_t session_id);

  rt::Universe* universe_;
  ServerOptions opts_;
  Net* net_ = nullptr;  ///< opts_.net or Net::Default(); never null

  std::thread loop_;
  std::vector<std::thread> workers_;
  std::vector<vm::VM*> worker_vms_;

  int unix_listen_fd_ = -1;
  int tcp_listen_fd_ = -1;
  int tcp_port_ = -1;
  int wake_r_ = -1;  ///< wake pipe read end (loop thread)
  int wake_w_ = -1;  ///< wake pipe write end (Stop, workers)

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> started_{false};
  bool joined_ = false;
  std::mutex join_mu_;

  // Sessions (loop thread only).
  PollerIface* poller_ = nullptr;
  uint64_t next_session_id_ = 1;
  std::unordered_map<uint64_t, std::unique_ptr<Session>> sessions_;
  std::unordered_map<int, uint64_t> fd_to_session_;
  std::atomic<size_t> active_sessions_{0};

  // Job queue (loop -> workers).
  std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;
  std::deque<Job> jobs_;
  bool workers_quit_ = false;
  int busy_workers_ = 0;

  // Completion queue (workers -> loop).
  std::mutex done_mu_;
  std::vector<Completion> done_;

  // Slow-request log: the worst slow_log_size requests by wall time,
  // sorted descending (workers write, STATS SLOW reads).
  struct SlowRequest {
    const char* cmd = "";
    uint64_t us = 0;
    uint64_t ts_ns = 0;
    uint64_t session_id = 0;
  };
  mutable std::mutex slow_mu_;
  std::vector<SlowRequest> slow_log_;
};

}  // namespace tml::server

#endif  // TML_SERVER_SERVER_H_
