#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace tml::server {

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), rdbuf_(std::move(other.rdbuf_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    rdbuf_ = std::move(other.rdbuf_);
    other.fd_ = -1;
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  rdbuf_.clear();
}

Result<Client> Client::ConnectUnix(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return Status::Invalid("client: unix path too long: " + path);
  }
  int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    Status st = Status::IOError("connect " + path + ": " +
                                std::strerror(errno));
    close(fd);
    return st;
  }
  Client c;
  c.fd_ = fd;
  return c;
}

Result<Client> Client::ConnectTcp(const std::string& host, int port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::Invalid("client: bad host " + host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    Status st = Status::IOError("connect " + host + ":" +
                                std::to_string(port) + ": " +
                                std::strerror(errno));
    close(fd);
    return st;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  Client c;
  c.fd_ = fd;
  return c;
}

Status Client::Send(const WireValue& request) {
  if (fd_ < 0) return Status::IOError("client: not connected");
  std::string frame;
  TML_RETURN_NOT_OK(EncodeFrame(request, &frame));
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n = send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<WireValue> Client::Recv() {
  if (fd_ < 0) return Status::IOError("client: not connected");
  while (true) {
    WireValue v;
    size_t consumed = 0;
    DecodeStatus st =
        DecodeFrame(reinterpret_cast<const uint8_t*>(rdbuf_.data()),
                    rdbuf_.size(), &v, &consumed);
    if (st == DecodeStatus::kOk) {
      rdbuf_.erase(0, consumed);
      return v;
    }
    if (st == DecodeStatus::kError) {
      return Status::Corruption("client: bad frame from server");
    }
    char buf[64 * 1024];
    ssize_t n = recv(fd_, buf, sizeof buf, 0);
    if (n == 0) return Status::IOError("client: server closed connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    rdbuf_.append(buf, static_cast<size_t>(n));
  }
}

Result<WireValue> Client::Call(const WireValue& request) {
  TML_RETURN_NOT_OK(Send(request));
  return Recv();
}

Result<WireValue> Client::Call(const std::vector<std::string>& words) {
  std::vector<WireValue> elems;
  elems.reserve(words.size());
  for (const std::string& w : words) elems.push_back(WireValue::Str(w));
  return Call(WireValue::Arr(std::move(elems)));
}

}  // namespace tml::server
