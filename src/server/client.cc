#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace tml::server {

namespace {

/// splitmix64 — the repo's standard cheap deterministic mixer.
uint64_t Mix(uint64_t a, uint64_t b) {
  uint64_t z = a * 0x9E3779B97F4A7C15ull + b;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// The commands safe to replay after a lost reply: they read state (or
/// are PING) and executing them twice is indistinguishable from once.
bool IsIdempotent(const WireValue& req) {
  if (req.tag != TAG_ARR || req.elems.empty() || !req.elems[0].is_str()) {
    return false;
  }
  static constexpr const char* kSafe[] = {"PING",    "LOOKUP",  "QUERY",
                                          "STATS",   "METRICS", "OBSERVE",
                                          "PROFILE"};
  const std::string& cmd = req.elems[0].s;
  for (const char* c : kSafe) {
    size_t n = std::strlen(c);
    if (cmd.size() != n) continue;
    bool eq = true;
    for (size_t k = 0; k < n; ++k) {
      char ch = cmd[k];
      if (ch >= 'a' && ch <= 'z') ch = static_cast<char>(ch - 'a' + 'A');
      if (ch != c[k]) {
        eq = false;
        break;
      }
    }
    if (eq) return true;
  }
  return false;
}

}  // namespace

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      rdbuf_(std::move(other.rdbuf_)),
      opts_(other.opts_),
      is_unix_(other.is_unix_),
      target_path_(std::move(other.target_path_)),
      target_port_(other.target_port_),
      reconnects_(other.reconnects_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    rdbuf_ = std::move(other.rdbuf_);
    opts_ = other.opts_;
    is_unix_ = other.is_unix_;
    target_path_ = std::move(other.target_path_);
    target_port_ = other.target_port_;
    reconnects_ = other.reconnects_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  rdbuf_.clear();
}

Status Client::Dial() {
  Close();
  if (is_unix_) {
    int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::IOError(std::string("socket: ") + std::strerror(errno));
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, target_path_.c_str(),
                 sizeof addr.sun_path - 1);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      Status st = Status::IOError("connect " + target_path_ + ": " +
                                  std::strerror(errno));
      close(fd);
      return st;
    }
    fd_ = fd;
    return Status::OK();
  }
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(target_port_));
  if (inet_pton(AF_INET, target_path_.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::Invalid("client: bad host " + target_path_);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    Status st = Status::IOError("connect " + target_path_ + ":" +
                                std::to_string(target_port_) + ": " +
                                std::strerror(errno));
    close(fd);
    return st;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  fd_ = fd;
  return Status::OK();
}

Status Client::Reconnect() {
  ++reconnects_;
  return Dial();
}

Result<Client> Client::ConnectUnix(const std::string& path,
                                   ClientOptions opts) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return Status::Invalid("client: unix path too long: " + path);
  }
  Client c;
  c.opts_ = opts;
  c.is_unix_ = true;
  c.target_path_ = path;
  TML_RETURN_NOT_OK(c.Dial());
  return c;
}

Result<Client> Client::ConnectTcp(const std::string& host, int port,
                                  ClientOptions opts) {
  Client c;
  c.opts_ = opts;
  c.is_unix_ = false;
  c.target_path_ = host;
  c.target_port_ = port;
  TML_RETURN_NOT_OK(c.Dial());
  return c;
}

Status Client::Send(const WireValue& request) {
  if (fd_ < 0) return Status::IOError("client: not connected");
  std::string frame;
  TML_RETURN_NOT_OK(EncodeFrame(request, &frame));
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n = send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<WireValue> Client::Recv() {
  if (fd_ < 0) return Status::IOError("client: not connected");
  while (true) {
    WireValue v;
    size_t consumed = 0;
    DecodeStatus st =
        DecodeFrame(reinterpret_cast<const uint8_t*>(rdbuf_.data()),
                    rdbuf_.size(), &v, &consumed);
    if (st == DecodeStatus::kOk) {
      rdbuf_.erase(0, consumed);
      return v;
    }
    if (st == DecodeStatus::kError) {
      return Status::Corruption("client: bad frame from server");
    }
    char buf[64 * 1024];
    ssize_t n = recv(fd_, buf, sizeof buf, 0);
    if (n == 0) return Status::IOError("client: server closed connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    rdbuf_.append(buf, static_cast<size_t>(n));
  }
}

Result<WireValue> Client::CallOnce(const WireValue& request) {
  TML_RETURN_NOT_OK(Send(request));
  return Recv();
}

void Client::BackoffSleep(int attempt) {
  uint64_t ms = opts_.base_backoff_ms;
  for (int k = 0; k < attempt && ms < opts_.max_backoff_ms; ++k) ms *= 2;
  if (ms > opts_.max_backoff_ms) ms = opts_.max_backoff_ms;
  if (ms == 0) return;
  // Half fixed, half deterministic jitter: spreads reconnect storms
  // without losing test reproducibility.
  uint64_t half = ms / 2;
  uint64_t jitter = half != 0
                        ? Mix(opts_.seed, static_cast<uint64_t>(attempt)) % half
                        : 0;
  uint64_t sleep_ms = ms - half + jitter;
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(sleep_ms / 1000);
  ts.tv_nsec = static_cast<long>((sleep_ms % 1000) * 1'000'000);
  nanosleep(&ts, nullptr);
}

Result<WireValue> Client::Call(const WireValue& request) {
  Result<WireValue> r = CallOnce(request);
  if (r.ok() || opts_.max_retries <= 0 || !IsIdempotent(request)) return r;
  for (int attempt = 0; attempt < opts_.max_retries; ++attempt) {
    BackoffSleep(attempt);
    if (!Reconnect().ok()) continue;  // backoff grows; maybe next attempt
    r = CallOnce(request);
    if (r.ok()) return r;
  }
  return r;
}

Result<WireValue> Client::Call(const std::vector<std::string>& words) {
  std::vector<WireValue> elems;
  elems.reserve(words.size());
  for (const std::string& w : words) elems.push_back(WireValue::Str(w));
  return Call(WireValue::Arr(std::move(elems)));
}

}  // namespace tml::server
