// The tyd wire protocol: length-prefixed frames of tagged binary values.
//
// Every request and every response is one frame:
//
//   u32le body_len  (1 .. kMaxFrameLen)
//   body            (exactly body_len bytes: one tagged value)
//
// A tagged value is a 1-byte tag followed by a tag-specific payload
// (little-endian fixed-width integers; no varints at the wire — the codec
// must be trivially implementable from any language):
//
//   TAG_NIL  —
//   TAG_ERR  u32le code, u32le len, len message bytes
//   TAG_STR  u32le len, len bytes
//   TAG_INT  i64le
//   TAG_DBL  f64le (IEEE-754 bits)
//   TAG_ARR  u32le count, then count tagged values
//
// Requests are TAG_ARR values whose first element is a TAG_STR command
// name; responses are any value (TAG_ERR carries failures).  Clients may
// pipeline: any number of frames may be in flight before the first
// response is read, and the server answers strictly in request order per
// connection.
//
// Decoder contract (the fuzz suite pins this down): arbitrary bytes
// produce kOk, kNeedMore (frame incomplete — feed more bytes) or kError
// (protocol violation — the connection is poisoned); never a crash, an
// over-read, or an unbounded allocation.  Element counts are validated
// against the bytes actually present before any reservation, and nesting
// is capped at kMaxDepth.

#ifndef TML_SERVER_PROTOCOL_H_
#define TML_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.h"

namespace tml::server {

// Value tags (SNIPPETS.md Snippet 3's Redis framing).
enum : uint8_t {
  TAG_NIL = 0,
  TAG_ERR = 1,
  TAG_STR = 2,
  TAG_INT = 3,
  TAG_DBL = 4,
  TAG_ARR = 5,
};

// TAG_ERR codes.
enum : uint32_t {
  ERR_TOO_BIG = 0,    ///< frame or value exceeds a protocol bound
  ERR_BAD_ARG = 1,    ///< malformed command arguments
  ERR_UNKNOWN = 2,    ///< unknown command
  ERR_NOT_FOUND = 3,  ///< missing module / function / OID
  ERR_RUNTIME = 4,    ///< VM or store failure executing the command
  ERR_BUDGET = 5,     ///< per-session step budget exhausted
  ERR_RAISED = 6,     ///< a TML exception escaped the called program
  ERR_SHUTDOWN = 7,   ///< server is draining; no new work accepted
  ERR_OOM = 8,        ///< per-session heap budget exhausted
  ERR_DEADLINE = 9,   ///< per-request wall-clock deadline exceeded
  ERR_OVERLOAD = 10,  ///< admission control shed this connection/request
};

/// Frame body size cap.  Large enough for INSTALL payloads and STATS
/// dumps, small enough that a hostile length prefix cannot make the
/// server allocate unboundedly.
inline constexpr uint32_t kMaxFrameLen = 1u << 20;  // 1 MiB

/// Nesting cap for TAG_ARR values.
inline constexpr uint32_t kMaxDepth = 32;

/// One decoded (or to-be-encoded) wire value.
struct WireValue {
  uint8_t tag = TAG_NIL;
  int64_t i = 0;                  ///< TAG_INT
  double d = 0.0;                 ///< TAG_DBL
  uint32_t err_code = 0;          ///< TAG_ERR
  std::string s;                  ///< TAG_STR payload / TAG_ERR message
  std::vector<WireValue> elems;   ///< TAG_ARR

  static WireValue Nil() { return {}; }
  static WireValue Int(int64_t v) {
    WireValue w;
    w.tag = TAG_INT;
    w.i = v;
    return w;
  }
  static WireValue Dbl(double v) {
    WireValue w;
    w.tag = TAG_DBL;
    w.d = v;
    return w;
  }
  static WireValue Str(std::string v) {
    WireValue w;
    w.tag = TAG_STR;
    w.s = std::move(v);
    return w;
  }
  static WireValue Err(uint32_t code, std::string msg) {
    WireValue w;
    w.tag = TAG_ERR;
    w.err_code = code;
    w.s = std::move(msg);
    return w;
  }
  static WireValue Arr(std::vector<WireValue> elems) {
    WireValue w;
    w.tag = TAG_ARR;
    w.elems = std::move(elems);
    return w;
  }

  bool is_str() const { return tag == TAG_STR; }
  bool is_err() const { return tag == TAG_ERR; }
};

/// Human-readable rendering ("(err 3 \"no such module\")", "[1, 2.5, nil]")
/// for tyccli and test diagnostics.
std::string ToString(const WireValue& v);

/// Name of a TAG_ERR code ("NOT_FOUND", ...).
const char* ErrCodeName(uint32_t code);

/// Serialize `v` as one frame (length prefix + body) appended to `*out`.
/// Fails with kOutOfRange if the encoding exceeds kMaxFrameLen or nests
/// deeper than kMaxDepth.
Status EncodeFrame(const WireValue& v, std::string* out);

enum class DecodeStatus {
  kOk,        ///< one frame consumed, *out filled
  kNeedMore,  ///< prefix of a valid frame — read more bytes and retry
  kError,     ///< protocol violation; the stream is unrecoverable
};

/// Decode one frame from the front of [data, data+len).  On kOk,
/// *consumed is the full frame size (prefix + body) and *out the value.
/// On kNeedMore / kError, *consumed is 0.  `max_frame` lets tests shrink
/// the bound; the body must also be fully consumed by the value (trailing
/// garbage inside a frame is kError).
DecodeStatus DecodeFrame(const uint8_t* data, size_t len, WireValue* out,
                         size_t* consumed, uint32_t max_frame = kMaxFrameLen);

}  // namespace tml::server

#endif  // TML_SERVER_PROTOCOL_H_
