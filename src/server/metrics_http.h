// Minimal embedded HTTP listener for the scrape/health surface
// (observability plane; DESIGN.md §11).
//
// Serves exactly five read-only endpoints over HTTP/1.0-style
// request/response (no keep-alive, no TLS, no dependencies):
//
//   GET /metrics   the full metrics registry, Prometheus text exposition
//                  format 0.0.4 (the same payload as the METRICS command)
//   GET /healthz   "ok" while the process is serving — a liveness probe
//   GET /profile   the sampling profiler's hot-function table (JSON)
//   GET /flight    the flight recorder's retained window (Chrome trace
//                  JSON; ?window=SECONDS bounds it)
//   GET /slow      the server's slow-request log (JSON array)
//
// Deliberately *not* the tagged-binary server: scrapers (Prometheus,
// curl, a browser) speak HTTP, and a diagnostic surface must stay
// reachable even when the main protocol path is wedged.  One thread,
// blocking accept with a poll timeout for prompt Stop(); each request is
// served and closed — scrape traffic is low-rate by design.

#ifndef TML_SERVER_METRICS_HTTP_H_
#define TML_SERVER_METRICS_HTTP_H_

#include <atomic>
#include <string>
#include <thread>

#include "support/status.h"

namespace tml::rt {
class Universe;
}

namespace tml::server {

class Server;

class MetricsHttpServer {
 public:
  /// Both pointers may be null: a null universe serves "{}" on /profile,
  /// a null server serves "[]" on /slow.  Non-null pointers must outlive
  /// the listener.
  MetricsHttpServer(rt::Universe* universe, Server* server)
      : universe_(universe), server_(server) {}
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Bind `host:port` (port 0 = ephemeral, read back with port()) and
  /// launch the serving thread.
  Status Start(const std::string& host, int port);
  /// Close the listener and join the thread; idempotent.
  void Stop();

  int port() const { return port_; }

  /// Request routing, exposed for tests: full response bytes (status
  /// line + headers + body) for `path` ("/metrics", ...).
  std::string Respond(const std::string& path) const;

 private:
  void Loop();
  void ServeOne(int fd) const;

  rt::Universe* universe_;
  Server* server_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::thread thread_;
};

}  // namespace tml::server

#endif  // TML_SERVER_METRICS_HTTP_H_
