#include "server/protocol.h"

#include <cstdio>
#include <cstring>

namespace tml::server {

namespace {

void PutU32(uint32_t v, std::string* out) {
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out->append(b, 4);
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

/// Bounded little-endian reads over [data, data+len) with a cursor; every
/// accessor checks the remaining byte count first, so a truncated or
/// hostile buffer can only produce `ok = false`, never an over-read.
struct Reader {
  const uint8_t* data;
  size_t len;
  size_t pos = 0;

  size_t remaining() const { return len - pos; }

  bool ReadU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = data[pos++];
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    *v = static_cast<uint32_t>(data[pos]) |
         static_cast<uint32_t>(data[pos + 1]) << 8 |
         static_cast<uint32_t>(data[pos + 2]) << 16 |
         static_cast<uint32_t>(data[pos + 3]) << 24;
    pos += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (remaining() < 8) return false;
    uint64_t x = 0;
    for (int i = 0; i < 8; ++i) {
      x |= static_cast<uint64_t>(data[pos + i]) << (8 * i);
    }
    *v = x;
    pos += 8;
    return true;
  }
  bool ReadBytes(size_t n, std::string* out) {
    if (remaining() < n) return false;
    out->assign(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return true;
  }
};

/// Decode one value from the frame body.  The body is complete (the frame
/// length prefix was satisfied), so any truncation inside it is a protocol
/// error, not kNeedMore.
bool DecodeValue(Reader* r, WireValue* out, uint32_t depth) {
  if (depth > kMaxDepth) return false;
  uint8_t tag = 0;
  if (!r->ReadU8(&tag)) return false;
  out->tag = tag;
  switch (tag) {
    case TAG_NIL:
      return true;
    case TAG_ERR: {
      uint32_t len = 0;
      if (!r->ReadU32(&out->err_code) || !r->ReadU32(&len)) return false;
      return len <= r->remaining() && r->ReadBytes(len, &out->s);
    }
    case TAG_STR: {
      uint32_t len = 0;
      if (!r->ReadU32(&len)) return false;
      return len <= r->remaining() && r->ReadBytes(len, &out->s);
    }
    case TAG_INT: {
      uint64_t bits = 0;
      if (!r->ReadU64(&bits)) return false;
      out->i = static_cast<int64_t>(bits);
      return true;
    }
    case TAG_DBL: {
      uint64_t bits = 0;
      if (!r->ReadU64(&bits)) return false;
      std::memcpy(&out->d, &bits, sizeof out->d);
      return true;
    }
    case TAG_ARR: {
      uint32_t count = 0;
      if (!r->ReadU32(&count)) return false;
      // Each element costs at least its tag byte, so a count beyond the
      // bytes present is a lie — reject before reserving anything.
      if (count > r->remaining()) return false;
      out->elems.reserve(count);
      for (uint32_t k = 0; k < count; ++k) {
        WireValue elem;
        if (!DecodeValue(r, &elem, depth + 1)) return false;
        out->elems.push_back(std::move(elem));
      }
      return true;
    }
    default:
      return false;
  }
}

Status EncodeValue(const WireValue& v, std::string* out, uint32_t depth) {
  if (depth > kMaxDepth) {
    return Status::OutOfRange("protocol: value nests deeper than kMaxDepth");
  }
  out->push_back(static_cast<char>(v.tag));
  switch (v.tag) {
    case TAG_NIL:
      return Status::OK();
    case TAG_ERR:
      PutU32(v.err_code, out);
      PutU32(static_cast<uint32_t>(v.s.size()), out);
      out->append(v.s);
      return Status::OK();
    case TAG_STR:
      PutU32(static_cast<uint32_t>(v.s.size()), out);
      out->append(v.s);
      return Status::OK();
    case TAG_INT:
      PutU64(static_cast<uint64_t>(v.i), out);
      return Status::OK();
    case TAG_DBL: {
      uint64_t bits = 0;
      std::memcpy(&bits, &v.d, sizeof bits);
      PutU64(bits, out);
      return Status::OK();
    }
    case TAG_ARR:
      PutU32(static_cast<uint32_t>(v.elems.size()), out);
      for (const WireValue& e : v.elems) {
        TML_RETURN_NOT_OK(EncodeValue(e, out, depth + 1));
      }
      return Status::OK();
    default:
      return Status::Invalid("protocol: cannot encode unknown tag " +
                             std::to_string(v.tag));
  }
}

}  // namespace

Status EncodeFrame(const WireValue& v, std::string* out) {
  std::string body;
  TML_RETURN_NOT_OK(EncodeValue(v, &body, 0));
  if (body.size() > kMaxFrameLen) {
    return Status::OutOfRange("protocol: frame body " +
                              std::to_string(body.size()) +
                              " bytes exceeds kMaxFrameLen");
  }
  PutU32(static_cast<uint32_t>(body.size()), out);
  out->append(body);
  return Status::OK();
}

DecodeStatus DecodeFrame(const uint8_t* data, size_t len, WireValue* out,
                         size_t* consumed, uint32_t max_frame) {
  *consumed = 0;
  if (len < 4) return DecodeStatus::kNeedMore;
  Reader prefix{data, len};
  uint32_t body_len = 0;
  prefix.ReadU32(&body_len);
  if (body_len == 0 || body_len > max_frame) return DecodeStatus::kError;
  if (len - 4 < body_len) return DecodeStatus::kNeedMore;
  Reader body{data + 4, body_len};
  *out = WireValue();
  if (!DecodeValue(&body, out, 0) || body.remaining() != 0) {
    return DecodeStatus::kError;
  }
  *consumed = 4 + static_cast<size_t>(body_len);
  return DecodeStatus::kOk;
}

const char* ErrCodeName(uint32_t code) {
  switch (code) {
    case ERR_TOO_BIG: return "TOO_BIG";
    case ERR_BAD_ARG: return "BAD_ARG";
    case ERR_UNKNOWN: return "UNKNOWN";
    case ERR_NOT_FOUND: return "NOT_FOUND";
    case ERR_RUNTIME: return "RUNTIME";
    case ERR_BUDGET: return "BUDGET";
    case ERR_RAISED: return "RAISED";
    case ERR_SHUTDOWN: return "SHUTDOWN";
    case ERR_OOM: return "OOM";
    case ERR_DEADLINE: return "DEADLINE";
    case ERR_OVERLOAD: return "OVERLOAD";
    default: return "ERR?";
  }
}

std::string ToString(const WireValue& v) {
  switch (v.tag) {
    case TAG_NIL:
      return "nil";
    case TAG_ERR:
      return std::string("(err ") + ErrCodeName(v.err_code) + " \"" + v.s +
             "\")";
    case TAG_STR:
      return "\"" + v.s + "\"";
    case TAG_INT:
      return std::to_string(v.i);
    case TAG_DBL: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%g", v.d);
      return buf;
    }
    case TAG_ARR: {
      std::string out = "[";
      for (size_t k = 0; k < v.elems.size(); ++k) {
        if (k != 0) out += ", ";
        out += ToString(v.elems[k]);
      }
      return out + "]";
    }
    default:
      return "<tag " + std::to_string(v.tag) + ">";
  }
}

}  // namespace tml::server
