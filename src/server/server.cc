#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string_view>

#include "query/relation.h"
#include "telemetry/flight.h"
#include "telemetry/metrics.h"
#include "telemetry/prometheus.h"
#include "telemetry/trace.h"

namespace tml::server {

namespace {

bool EqualsIgnoreCase(const std::string& a, const char* b) {
  size_t n = std::strlen(b);
  if (a.size() != n) return false;
  for (size_t k = 0; k < n; ++k) {
    char c = a[k];
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
    if (c != b[k]) return false;
  }
  return true;
}

// ---- telemetry ("tml.server.*"; DESIGN.md §10) -------------------------------

telemetry::Counter* MConnections() {
  static auto* c =
      telemetry::Registry::Global().GetCounter("tml.server.connections");
  return c;
}
telemetry::Counter* MDisconnects() {
  static auto* c =
      telemetry::Registry::Global().GetCounter("tml.server.disconnects");
  return c;
}
telemetry::Counter* MRequests() {
  static auto* c =
      telemetry::Registry::Global().GetCounter("tml.server.requests");
  return c;
}
telemetry::Counter* MErrors() {
  static auto* c = telemetry::Registry::Global().GetCounter("tml.server.errors");
  return c;
}
telemetry::Counter* MProtocolErrors() {
  static auto* c =
      telemetry::Registry::Global().GetCounter("tml.server.protocol_errors");
  return c;
}
telemetry::Counter* MBytesIn() {
  static auto* c =
      telemetry::Registry::Global().GetCounter("tml.server.bytes_in");
  return c;
}
telemetry::Counter* MBytesOut() {
  static auto* c =
      telemetry::Registry::Global().GetCounter("tml.server.bytes_out");
  return c;
}
telemetry::Histogram* MRequestUs() {
  static auto* h =
      telemetry::Registry::Global().GetHistogram("tml.server.request_us");
  return h;
}
telemetry::Histogram* MBatchFrames() {
  static auto* h =
      telemetry::Registry::Global().GetHistogram("tml.server.batch_frames");
  return h;
}
telemetry::Histogram* MQueueWaitUs() {
  static auto* h =
      telemetry::Registry::Global().GetHistogram("tml.server.queue_wait_us");
  return h;
}
telemetry::Counter* MSlowRequests() {
  static auto* c =
      telemetry::Registry::Global().GetCounter("tml.server.slow_requests");
  return c;
}
telemetry::Counter* MShed() {
  static auto* c =
      telemetry::Registry::Global().GetCounter("tml.server.shed_total");
  return c;
}
telemetry::Counter* MTimeouts() {
  static auto* c =
      telemetry::Registry::Global().GetCounter("tml.server.timeouts");
  return c;
}
telemetry::Gauge* MQueueDepth() {
  static auto* g =
      telemetry::Registry::Global().GetGauge("tml.server.queue_depth");
  return g;
}

/// The canonical command set, shared by the per-command latency
/// histograms and the dispatch label.  "OTHER" buckets malformed and
/// unknown commands so every request lands in exactly one histogram.
constexpr const char* kCommands[] = {
    "PING",  "INSTALL",  "LOOKUP", "CALL",   "CALLOID",  "OPTIMIZE",
    "QUERY", "RELSTORE", "STATS",  "BUDGET", "SHUTDOWN", "OBSERVE",
    "PROFILE", "METRICS", "DEADLINE", "OTHER"};

/// Canonical (immortal) label for a request's command word.
const char* CommandLabel(const WireValue& req) {
  if (req.tag != TAG_ARR || req.elems.empty() || !req.elems[0].is_str()) {
    return "OTHER";
  }
  for (const char* c : kCommands) {
    if (EqualsIgnoreCase(req.elems[0].s, c)) return c;
  }
  return "OTHER";
}

/// Per-command request-latency histogram, tml.server.cmd_us{cmd=...}.
/// The table is built once (thread-safe function-local static), so the
/// per-request cost is one hash lookup — no registry mutex on the
/// dispatch path.
telemetry::Histogram* MCmdUs(const char* cmd) {
  static const auto* table = [] {
    auto* m = new std::unordered_map<std::string_view, telemetry::Histogram*>;
    for (const char* c : kCommands) {
      (*m)[c] = telemetry::Registry::Global().GetHistogram("tml.server.cmd_us",
                                                           {{"cmd", c}});
    }
    return m;
  }();
  return table->at(cmd);
}

// ---- socket plumbing ---------------------------------------------------------

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(std::string("fcntl(O_NONBLOCK): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Result<int> ListenTcp(const std::string& host, int port, int* bound_port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::Invalid("server: bad TCP host " + host);
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      listen(fd, 128) < 0) {
    Status st = Status::IOError(std::string("bind/listen ") + host + ":" +
                                std::to_string(port) + ": " +
                                std::strerror(errno));
    close(fd);
    return st;
  }
  socklen_t len = sizeof addr;
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    *bound_port = ntohs(addr.sin_port);
  }
  Status st = SetNonBlocking(fd);
  if (!st.ok()) {
    close(fd);
    return st;
  }
  return fd;
}

/// True when a process is still accepting on the Unix socket at `path` —
/// a probe connect() succeeds.  A dead predecessor's socket file refuses
/// (ECONNREFUSED) or is gone, and is safe to unlink.
bool UnixSocketAlive(const std::string& path) {
  int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  bool alive = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
  close(fd);
  return alive;
}

Result<int> ListenUnix(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return Status::Invalid("server: unix path too long: " + path);
  }
  // Never steal a live daemon's socket: unlinking unconditionally would
  // let a second tycd silently take over the path while the first keeps
  // serving its (now unreachable) listener.  Probe first; only a dead
  // predecessor's leftover is removed.
  struct stat st_buf;
  if (stat(path.c_str(), &st_buf) == 0) {
    if (UnixSocketAlive(path)) {
      return Status::AlreadyExists("server: " + path +
                                   " is in use by a live server; refusing to "
                                   "steal it");
    }
    unlink(path.c_str());  // stale socket from a crashed predecessor
  }
  int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      listen(fd, 128) < 0) {
    Status st = Status::IOError(std::string("bind/listen ") + path + ": " +
                                std::strerror(errno));
    close(fd);
    return st;
  }
  Status st = SetNonBlocking(fd);
  if (!st.ok()) {
    close(fd);
    return st;
  }
  return fd;
}

}  // namespace

// ---- readiness polling -------------------------------------------------------

namespace {
struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
};
}  // namespace

/// Readiness-notification seam: one epoll implementation (Linux) and one
/// portable poll(2) implementation; level-triggered in both cases.  The
/// loop registers read interest for every fd and toggles write interest
/// only while a session has buffered output.
class PollerIface {
 public:
  virtual ~PollerIface() = default;
  virtual void Add(int fd) = 0;
  virtual void SetWriteInterest(int fd, bool on) = 0;
  /// Backpressure: disarming read interest (EPOLLIN off) stops the loop
  /// from draining a session's socket; bytes back up into the kernel
  /// buffer and, once it fills, into the sender.  Hangup/error events
  /// still fire either way.
  virtual void SetReadInterest(int fd, bool on) = 0;
  virtual void Remove(int fd) = 0;
  /// Blocks up to timeout_ms (-1 = forever); fills *out.
  virtual void Wait(int timeout_ms, std::vector<PollEvent>* out) = 0;
};

namespace {

class PollPoller final : public PollerIface {
 public:
  void Add(int fd) override { fds_[fd] = POLLIN; }
  void SetWriteInterest(int fd, bool on) override {
    auto it = fds_.find(fd);
    if (it == fds_.end()) return;
    it->second = static_cast<short>(on ? (it->second | POLLOUT)
                                       : (it->second & ~POLLOUT));
  }
  void SetReadInterest(int fd, bool on) override {
    auto it = fds_.find(fd);
    if (it == fds_.end()) return;
    it->second = static_cast<short>(on ? (it->second | POLLIN)
                                       : (it->second & ~POLLIN));
  }
  void Remove(int fd) override { fds_.erase(fd); }
  void Wait(int timeout_ms, std::vector<PollEvent>* out) override {
    scratch_.clear();
    for (auto& [fd, ev] : fds_) {
      scratch_.push_back(pollfd{fd, ev, 0});
    }
    int n = poll(scratch_.data(), scratch_.size(), timeout_ms);
    out->clear();
    if (n <= 0) return;
    for (const pollfd& p : scratch_) {
      if (p.revents == 0) continue;
      PollEvent e;
      e.fd = p.fd;
      e.readable = (p.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
      e.writable = (p.revents & POLLOUT) != 0;
      out->push_back(e);
    }
  }

 private:
  std::unordered_map<int, short> fds_;  // fd -> requested events
  std::vector<pollfd> scratch_;
};

#ifdef __linux__
class EpollPoller final : public PollerIface {
 public:
  EpollPoller() : ep_(epoll_create1(0)) {}
  ~EpollPoller() override {
    if (ep_ >= 0) close(ep_);
  }
  bool ok() const { return ep_ >= 0; }

  void Add(int fd) override {
    interest_[fd] = EPOLLIN;
    Apply(fd, EPOLL_CTL_ADD);
  }
  void SetWriteInterest(int fd, bool on) override {
    auto it = interest_.find(fd);
    if (it == interest_.end()) return;
    it->second = on ? (it->second | EPOLLOUT) : (it->second & ~EPOLLOUT);
    Apply(fd, EPOLL_CTL_MOD);
  }
  void SetReadInterest(int fd, bool on) override {
    auto it = interest_.find(fd);
    if (it == interest_.end()) return;
    it->second = on ? (it->second | EPOLLIN) : (it->second & ~EPOLLIN);
    Apply(fd, EPOLL_CTL_MOD);
  }
  void Remove(int fd) override {
    interest_.erase(fd);
    epoll_ctl(ep_, EPOLL_CTL_DEL, fd, nullptr);
  }
  void Wait(int timeout_ms, std::vector<PollEvent>* out) override {
    epoll_event evs[64];
    int n = epoll_wait(ep_, evs, 64, timeout_ms);
    out->clear();
    for (int k = 0; k < n; ++k) {
      PollEvent e;
      e.fd = evs[k].data.fd;
      e.readable = (evs[k].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0;
      e.writable = (evs[k].events & EPOLLOUT) != 0;
      out->push_back(e);
    }
  }

 private:
  void Apply(int fd, int op) {
    epoll_event ev{};
    ev.events = interest_[fd];
    ev.data.fd = fd;
    epoll_ctl(ep_, op, fd, &ev);
  }

  int ep_;
  std::unordered_map<int, uint32_t> interest_;  // fd -> desired events
};
#endif  // __linux__

std::unique_ptr<PollerIface> MakePoller(bool force_poll) {
#ifdef __linux__
  if (!force_poll) {
    auto ep = std::make_unique<EpollPoller>();
    if (ep->ok()) return ep;
  }
#else
  (void)force_poll;
#endif
  return std::make_unique<PollPoller>();
}

// ---- value conversion --------------------------------------------------------

/// Wire argument -> VM value on the worker's private heap.  Safe without
/// pinning: GC only runs inside the interpreter loop, and by then the
/// arguments live in frame registers (GC roots).
Result<vm::Value> WireToVm(vm::VM* vm, const WireValue& w, int depth = 0) {
  if (depth > static_cast<int>(kMaxDepth)) {
    return Status::Invalid("argument nests too deep");
  }
  switch (w.tag) {
    case TAG_NIL:
      return vm::Value::Nil();
    case TAG_INT:
      return vm::Value::Int(w.i);
    case TAG_DBL:
      return vm::Value::Real(w.d);
    case TAG_STR: {
      vm::StringObj* s = vm->heap()->New<vm::StringObj>();
      s->str = w.s;
      return vm::Value::ObjV(s);
    }
    case TAG_ARR: {
      vm::ArrayObj* a = vm->heap()->New<vm::ArrayObj>();
      a->slots.reserve(w.elems.size());
      for (const WireValue& e : w.elems) {
        TML_ASSIGN_OR_RETURN(vm::Value v, WireToVm(vm, e, depth + 1));
        a->slots.push_back(v);
      }
      return vm::Value::ObjV(a);
    }
    default:
      return Status::Invalid("TAG_ERR is not a valid argument");
  }
}

/// VM result -> wire value.  Booleans and characters travel as TAG_INT
/// (the protocol keeps Snippet 3's six tags); OIDs as TAG_INT of the raw
/// id; closures as an opaque TAG_STR.
WireValue VmToWire(const vm::Value& v, int depth = 0) {
  if (depth > static_cast<int>(kMaxDepth)) {
    return WireValue::Err(ERR_TOO_BIG, "result nests too deep");
  }
  switch (v.tag) {
    case vm::Tag::kNil:
      return WireValue::Nil();
    case vm::Tag::kBool:
      return WireValue::Int(v.b ? 1 : 0);
    case vm::Tag::kInt:
      return WireValue::Int(v.i);
    case vm::Tag::kChar:
      return WireValue::Int(v.ch);
    case vm::Tag::kReal:
      return WireValue::Dbl(v.r);
    case vm::Tag::kOid:
      return WireValue::Int(static_cast<int64_t>(v.oid));
    case vm::Tag::kObj:
      switch (v.obj->kind) {
        case vm::ObjKind::kString:
          return WireValue::Str(static_cast<vm::StringObj*>(v.obj)->str);
        case vm::ObjKind::kBytes: {
          const auto& b = static_cast<vm::BytesObj*>(v.obj)->bytes;
          return WireValue::Str(
              std::string(reinterpret_cast<const char*>(b.data()), b.size()));
        }
        case vm::ObjKind::kArray: {
          std::vector<WireValue> elems;
          const auto& slots = static_cast<vm::ArrayObj*>(v.obj)->slots;
          elems.reserve(slots.size());
          for (const vm::Value& s : slots) {
            elems.push_back(VmToWire(s, depth + 1));
          }
          return WireValue::Arr(std::move(elems));
        }
        case vm::ObjKind::kClosure:
          return WireValue::Str("<closure>");
      }
      return WireValue::Err(ERR_RUNTIME, "unrenderable object");
  }
  return WireValue::Err(ERR_RUNTIME, "unrenderable value");
}

/// Library Status -> wire error.
WireValue StatusToErr(const Status& st) {
  uint32_t code = ERR_RUNTIME;
  switch (st.code()) {
    case StatusCode::kNotFound: code = ERR_NOT_FOUND; break;
    case StatusCode::kInvalid:
    case StatusCode::kAlreadyExists: code = ERR_BAD_ARG; break;
    case StatusCode::kOutOfRange: code = ERR_BUDGET; break;
    default: break;
  }
  return WireValue::Err(code, st.ToString());
}

}  // namespace

// ---- session -----------------------------------------------------------------

struct Server::Session {
  uint64_t id = 0;
  int fd = -1;
  std::string inbuf;                 ///< raw bytes not yet framed
  std::deque<WireValue> pending;     ///< decoded requests awaiting dispatch
  std::string outbuf;                ///< encoded responses awaiting write
  SessionLimits limits;              ///< BUDGET / BUDGET MEM / DEADLINE state
  bool busy = false;                 ///< a batch is at a worker
  bool want_close = false;           ///< close once outbuf flushes
  bool dead = false;                 ///< fd closed; lingers while busy
  bool read_paused = false;          ///< EPOLLIN disarmed (backpressure)
  uint64_t last_activity_ns = 0;     ///< last byte in or out (idle sweep)
  uint64_t frame_start_ns = 0;       ///< first byte of an incomplete frame
};

// ---- lifecycle ---------------------------------------------------------------

Server::Server(rt::Universe* universe, ServerOptions opts)
    : universe_(universe),
      opts_(std::move(opts)),
      net_(opts_.net != nullptr ? opts_.net : Net::Default()) {}

Server::~Server() {
  Stop();
  Join();
}

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::AlreadyExists("server: already started");
  }
  if (opts_.workers < 1) opts_.workers = 1;
  if (opts_.unix_path.empty() && opts_.tcp_port < 0) {
    return Status::Invalid("server: no listener configured");
  }
  if (!opts_.unix_path.empty()) {
    TML_ASSIGN_OR_RETURN(unix_listen_fd_, ListenUnix(opts_.unix_path));
  }
  if (opts_.tcp_port >= 0) {
    TML_ASSIGN_OR_RETURN(tcp_listen_fd_,
                         ListenTcp(opts_.tcp_host, opts_.tcp_port, &tcp_port_));
  }
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    return Status::IOError(std::string("pipe: ") + std::strerror(errno));
  }
  wake_r_ = pipe_fds[0];
  wake_w_ = pipe_fds[1];
  TML_RETURN_NOT_OK(SetNonBlocking(wake_r_));
  TML_RETURN_NOT_OK(SetNonBlocking(wake_w_));

  for (int k = 0; k < opts_.workers; ++k) {
    worker_vms_.push_back(universe_->AddWorkerVm());
  }
  for (int k = 0; k < opts_.workers; ++k) {
    workers_.emplace_back([this, k] { WorkerThread(k); });
  }
  loop_ = std::thread([this] { LoopThread(); });
  return Status::OK();
}

void Server::Stop() {
  // Async-signal-safe: an atomic store plus one write(2).  tycd calls
  // this from its SIGTERM handler.
  stop_requested_.store(true, std::memory_order_release);
  if (wake_w_ >= 0) {
    char b = 'q';
    [[maybe_unused]] ssize_t n = write(wake_w_, &b, 1);
  }
}

void Server::Join() {
  std::lock_guard<std::mutex> lock(join_mu_);
  if (joined_ || !started_.load()) return;
  if (loop_.joinable()) loop_.join();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  if (wake_w_ >= 0) {
    int fd = wake_w_;
    wake_w_ = -1;  // Stop() after Join() becomes a pure no-op
    close(fd);
  }
  joined_ = true;
}

// ---- loop thread -------------------------------------------------------------

void Server::LoopThread() {
  std::unique_ptr<PollerIface> poller = MakePoller(opts_.use_poll);
  poller_ = poller.get();
  poller->Add(wake_r_);
  if (unix_listen_fd_ >= 0) poller->Add(unix_listen_fd_);
  if (tcp_listen_fd_ >= 0) poller->Add(tcp_listen_fd_);

  bool listeners_open = true;
  bool draining = false;
  std::chrono::steady_clock::time_point drain_deadline;
  std::vector<PollEvent> events;

  while (true) {
    bool stopping = stop_requested_.load(std::memory_order_acquire);
    if (stopping && listeners_open) {
      // Phase 1 of shutdown: no new connections, no new bytes; what is
      // already parsed still executes and its responses still flush.
      if (unix_listen_fd_ >= 0) {
        poller->Remove(unix_listen_fd_);
        close(unix_listen_fd_);
        unix_listen_fd_ = -1;
      }
      if (tcp_listen_fd_ >= 0) {
        poller->Remove(tcp_listen_fd_);
        close(tcp_listen_fd_);
        tcp_listen_fd_ = -1;
      }
      listeners_open = false;
      draining = true;
      drain_deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      // Dispatch whatever is already queued on idle sessions.
      for (auto& [id, s] : sessions_) DispatchIfReady(s.get());
    }
    if (draining) {
      bool deadline = std::chrono::steady_clock::now() >= drain_deadline;
      if (AllDrained() || deadline) break;
    }

    poller->Wait(draining ? 50 : 500, &events);
    for (const PollEvent& ev : events) {
      if (ev.fd == wake_r_) {
        char buf[256];
        while (read(wake_r_, buf, sizeof buf) > 0) {
        }
        DrainCompletions();
        continue;
      }
      if (ev.fd == unix_listen_fd_ || ev.fd == tcp_listen_fd_) {
        if (ev.readable) HandleAccept(ev.fd);
        continue;
      }
      auto it = fd_to_session_.find(ev.fd);
      if (it == fd_to_session_.end()) continue;
      // CloseSession only marks a session dead (reaped below), so `s`
      // stays valid across both handlers even if one of them closes it.
      Session* s = sessions_.at(it->second).get();
      if (ev.readable && !draining) HandleReadable(s);
      if (!s->dead && ev.writable) HandleWritable(s);
    }
    // The wake pipe may have been consumed by a spurious wakeup ordering;
    // completions are cheap to poll.
    DrainCompletions();
    if (!draining &&
        (opts_.idle_timeout_ms != 0 || opts_.read_timeout_ms != 0)) {
      SweepTimeouts(telemetry::Tracer::NowNs());
    }
    ReapDeadSessions();
  }

  // Drain done: tear down sessions, stop the workers, then make the
  // shutdown durable — background services first (the adaptive manager
  // must not be mid-poll while we commit), then one final CommitStore.
  std::vector<uint64_t> ids;
  ids.reserve(sessions_.size());
  for (auto& [id, s] : sessions_) ids.push_back(id);
  for (uint64_t id : ids) CloseSession(id);

  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    workers_quit_ = true;
  }
  jobs_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }

  if (wake_r_ >= 0) close(wake_r_);
  if (unix_listen_fd_ >= 0) close(unix_listen_fd_);
  if (tcp_listen_fd_ >= 0) close(tcp_listen_fd_);
  if (!opts_.unix_path.empty()) unlink(opts_.unix_path.c_str());

  universe_->StopServices();
  universe_->CommitStore();
  poller_ = nullptr;
}

void Server::HandleAccept(int listen_fd) {
  while (true) {
    int fd = accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: wait for next event
    if (!SetNonBlocking(fd).ok()) {
      close(fd);
      continue;
    }
    if (opts_.max_sessions != 0 && sessions_.size() >= opts_.max_sessions) {
      // Admission control: over capacity a connect is answered with one
      // clean ERR_OVERLOAD frame and closed — the client sees a decodable
      // refusal it can back off on, never a hang or a torn stream.  The
      // send is best-effort (the fd is fresh, so the frame almost always
      // fits the empty socket buffer in one shot).
      MShed()->Increment();  // count before the send: the client may react
                             // to the frame (and read the counter) at once
      std::string frame;
      EncodeFrame(WireValue::Err(ERR_OVERLOAD,
                                 "server over capacity; retry with backoff"),
                  &frame);
      int err = 0;
      (void)net_->Send(fd, frame.data(), frame.size(), &err);
      close(fd);
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto s = std::make_unique<Session>();
    s->id = next_session_id_++;
    s->fd = fd;
    s->limits.step_budget = opts_.default_step_budget;
    s->limits.heap_budget = opts_.default_heap_budget;
    s->limits.deadline_ms = opts_.default_deadline_ms;
    s->last_activity_ns = telemetry::Tracer::NowNs();
    fd_to_session_[fd] = s->id;
    poller_->Add(fd);
    sessions_[s->id] = std::move(s);
    active_sessions_.store(sessions_.size(), std::memory_order_relaxed);
    MConnections()->Increment();
  }
}

void Server::HandleReadable(Session* s) {
  // Drain the socket, then the frames: every complete frame parsed here
  // lands in one batch, which is what makes pipelining pay.
  char buf[64 * 1024];
  bool got_bytes = false;
  while (true) {
    int err = 0;
    ssize_t n = net_->Recv(s->fd, buf, sizeof buf, &err);
    if (n > 0) {
      s->inbuf.append(buf, static_cast<size_t>(n));
      MBytesIn()->Add(static_cast<uint64_t>(n));
      got_bytes = true;
      // Backpressure mid-drain too: a firehose peer must not grow inbuf
      // past the cap just because it arrived in one readiness event.
      if (opts_.max_session_buffer != 0 &&
          s->inbuf.size() >= opts_.max_session_buffer) {
        break;
      }
      continue;
    }
    if (n == 0) {  // peer closed
      CloseSession(s->id);
      return;
    }
    if (err == EAGAIN || err == EWOULDBLOCK) break;
    CloseSession(s->id);
    return;
  }
  if (got_bytes) s->last_activity_ns = telemetry::Tracer::NowNs();

  size_t off = 0;
  while (off < s->inbuf.size()) {
    WireValue req;
    size_t consumed = 0;
    DecodeStatus st = DecodeFrame(
        reinterpret_cast<const uint8_t*>(s->inbuf.data()) + off,
        s->inbuf.size() - off, &req, &consumed, opts_.max_frame);
    if (st == DecodeStatus::kNeedMore) break;
    if (st == DecodeStatus::kError) {
      // Poisoned stream: answer with one ERR frame, then close after the
      // flush.  Nothing after this point can be framed reliably.
      MProtocolErrors()->Increment();
      WireValue err = WireValue::Err(
          ERR_TOO_BIG, "protocol error: bad frame (oversized, malformed, "
                       "or trailing garbage)");
      EncodeFrame(err, &s->outbuf);
      s->inbuf.clear();
      s->pending.clear();
      s->want_close = true;
      FlushOut(s);
      return;
    }
    s->pending.push_back(std::move(req));
    off += consumed;
  }
  s->inbuf.erase(0, off);
  // Slowloris bookkeeping: an incomplete frame left in inbuf starts (or
  // continues) the read-timeout clock; a fully-framed buffer clears it.
  if (s->inbuf.empty()) {
    s->frame_start_ns = 0;
  } else if (s->frame_start_ns == 0) {
    s->frame_start_ns = telemetry::Tracer::NowNs();
  }
  DispatchIfReady(s);
  if (!s->dead) UpdateReadInterest(s);
}

void Server::UpdateReadInterest(Session* s) {
  bool over =
      (opts_.max_queued_batches != 0 &&
       s->pending.size() >= opts_.max_queued_batches) ||
      (opts_.max_session_buffer != 0 &&
       s->inbuf.size() >= opts_.max_session_buffer);
  if (over == s->read_paused) return;
  s->read_paused = over;
  poller_->SetReadInterest(s->fd, !over);
}

void Server::SweepTimeouts(uint64_t now_ns) {
  for (auto& [id, s_ptr] : sessions_) {
    Session* s = s_ptr.get();
    if (s->dead) continue;
    // Slow-read (slowloris) and write-stall: a peer that trickles a frame
    // or refuses to drain its responses is cut after read_timeout_ms.
    if (opts_.read_timeout_ms != 0) {
      uint64_t limit = opts_.read_timeout_ms * 1'000'000ull;
      bool slow_read =
          s->frame_start_ns != 0 && now_ns - s->frame_start_ns > limit;
      bool write_stall =
          !s->outbuf.empty() && now_ns - s->last_activity_ns > limit;
      if (slow_read || write_stall) {
        MTimeouts()->Increment();
        if (slow_read) {
          // Best-effort courtesy frame; the write-staller by definition
          // is not reading, so it just gets the close.
          EncodeFrame(WireValue::Err(ERR_OVERLOAD, "read timeout"),
                      &s->outbuf);
          s->want_close = true;
          FlushOut(s);
          if (!s->dead && !s->outbuf.empty()) CloseSession(s->id);
        } else {
          CloseSession(s->id);
        }
        continue;
      }
    }
    // Idle: nothing buffered, nothing in flight, no traffic for
    // idle_timeout_ms.
    if (opts_.idle_timeout_ms != 0 && !s->busy && s->pending.empty() &&
        s->outbuf.empty() && s->inbuf.empty() &&
        now_ns - s->last_activity_ns > opts_.idle_timeout_ms * 1'000'000ull) {
      MTimeouts()->Increment();
      CloseSession(s->id);
    }
  }
}

void Server::DispatchIfReady(Session* s) {
  if (s->busy || s->dead || s->pending.empty()) return;
  Job job;
  job.session_id = s->id;
  job.limits = s->limits;
  job.enqueue_ns = telemetry::Tracer::NowNs();
  job.requests.reserve(s->pending.size());
  while (!s->pending.empty()) {
    job.requests.push_back(std::move(s->pending.front()));
    s->pending.pop_front();
  }
  MBatchFrames()->Observe(job.requests.size());
  s->busy = true;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    jobs_.push_back(std::move(job));
    MQueueDepth()->Set(static_cast<int64_t>(jobs_.size()));
  }
  jobs_cv_.notify_one();
}

void Server::DrainCompletions() {
  std::vector<Completion> done;
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    done.swap(done_);
  }
  for (Completion& c : done) {
    if (c.shutdown) stop_requested_.store(true, std::memory_order_release);
    auto it = sessions_.find(c.session_id);
    if (it == sessions_.end()) continue;
    Session* s = it->second.get();
    s->busy = false;
    if (s->dead) continue;  // peer vanished while the batch ran; reaped later
    s->limits = c.limits;
    s->outbuf.append(c.bytes);
    FlushOut(s);
    if (!s->dead) {
      DispatchIfReady(s);
      // The drained queue may un-trip the backpressure latch.
      UpdateReadInterest(s);
    }
  }
}

void Server::HandleWritable(Session* s) { FlushOut(s); }

void Server::FlushOut(Session* s) {
  while (!s->outbuf.empty()) {
    int err = 0;
    ssize_t n = net_->Send(s->fd, s->outbuf.data(), s->outbuf.size(), &err);
    if (n > 0) {
      MBytesOut()->Add(static_cast<uint64_t>(n));
      s->outbuf.erase(0, static_cast<size_t>(n));
      s->last_activity_ns = telemetry::Tracer::NowNs();
      continue;
    }
    if (n < 0 && (err == EAGAIN || err == EWOULDBLOCK)) {
      poller_->SetWriteInterest(s->fd, true);
      return;
    }
    CloseSession(s->id);
    return;
  }
  poller_->SetWriteInterest(s->fd, false);
  if (s->want_close) CloseSession(s->id);
}

void Server::CloseSession(uint64_t id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  Session* s = it->second.get();
  if (s->dead) return;
  if (s->fd >= 0) {
    poller_->Remove(s->fd);
    fd_to_session_.erase(s->fd);
    close(s->fd);
    s->fd = -1;
    MDisconnects()->Increment();
  }
  s->dead = true;
  s->pending.clear();
}

void Server::ReapDeadSessions() {
  // Dead-but-busy sessions linger: a worker still owns their batch, and
  // the completion must find the session to be dropped cleanly.
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second->dead && !it->second->busy) {
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
  active_sessions_.store(sessions_.size(), std::memory_order_relaxed);
}

bool Server::AllDrained() const {
  for (const auto& [id, s] : sessions_) {
    if (s->busy) return false;
    if (!s->dead && (!s->pending.empty() || !s->outbuf.empty())) return false;
  }
  return true;
}

// ---- worker threads ----------------------------------------------------------

void Server::WorkerThread(int index) {
  vm::VM* vm = worker_vms_[static_cast<size_t>(index)];
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(jobs_mu_);
      jobs_cv_.wait(lock, [this] { return workers_quit_ || !jobs_.empty(); });
      if (jobs_.empty()) {
        if (workers_quit_) return;
        continue;
      }
      job = std::move(jobs_.front());
      jobs_.pop_front();
      MQueueDepth()->Set(static_cast<int64_t>(jobs_.size()));
    }
    Completion c = RunBatch(vm, std::move(job));
    {
      std::lock_guard<std::mutex> lock(done_mu_);
      done_.push_back(std::move(c));
    }
    char b = 'c';
    [[maybe_unused]] ssize_t n = write(wake_w_, &b, 1);
  }
}

Server::Completion Server::RunBatch(vm::VM* vm, Job job) {
  TML_TELEMETRY_SPAN("server", "server.batch");
  // Queue wait: time from DispatchIfReady to a worker picking the batch
  // up — the component of client latency the VM never sees.
  uint64_t now_ns = telemetry::Tracer::NowNs();
  if (job.enqueue_ns != 0 && now_ns > job.enqueue_ns) {
    MQueueWaitUs()->Observe((now_ns - job.enqueue_ns) / 1000);
  }
  Completion c;
  c.session_id = job.session_id;
  c.limits = job.limits;
  for (const WireValue& req : job.requests) {
    TML_TELEMETRY_SPAN("server", "server.request");
    const char* cmd = CommandLabel(req);
    auto t0 = std::chrono::steady_clock::now();
    WireValue resp = Execute(vm, req, &c.limits, &c.shutdown);
    auto dt = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - t0);
    uint64_t us = static_cast<uint64_t>(dt.count());
    MRequestUs()->Observe(us);
    MCmdUs(cmd)->Observe(us);
    MRequests()->Increment();
    if (opts_.slow_request_us != 0 && us >= opts_.slow_request_us) {
      NoteSlow(cmd, us, job.session_id);
    }
    if (resp.is_err()) MErrors()->Increment();
    // Response encoding cannot fail for values we build (bounded depth),
    // except oversized payloads — degrade those to an ERR frame.
    std::string frame;
    if (!EncodeFrame(resp, &frame).ok()) {
      frame.clear();
      EncodeFrame(WireValue::Err(ERR_TOO_BIG, "response exceeds frame limit"),
                  &frame);
    }
    c.bytes.append(frame);
  }
  return c;
}

WireValue Server::Execute(vm::VM* vm, const WireValue& req,
                          SessionLimits* limits, bool* shutdown) {
  if (req.tag != TAG_ARR || req.elems.empty() || !req.elems[0].is_str()) {
    return WireValue::Err(ERR_BAD_ARG,
                          "request must be an array [command, args...]");
  }
  const std::string& cmd = req.elems[0].s;
  const std::vector<WireValue>& a = req.elems;

  if (EqualsIgnoreCase(cmd, "PING")) return WireValue::Str("PONG");
  if (EqualsIgnoreCase(cmd, "INSTALL")) return CmdInstall(a);
  if (EqualsIgnoreCase(cmd, "LOOKUP")) return CmdLookup(a);
  if (EqualsIgnoreCase(cmd, "CALL")) return CmdCall(vm, a, *limits);
  if (EqualsIgnoreCase(cmd, "CALLOID")) return CmdCallOid(vm, a, *limits);
  if (EqualsIgnoreCase(cmd, "OPTIMIZE")) return CmdOptimize(a);
  if (EqualsIgnoreCase(cmd, "RELSTORE")) return CmdRelStore(a);
  if (EqualsIgnoreCase(cmd, "QUERY")) return CmdQuery(vm, a, *limits);
  if (EqualsIgnoreCase(cmd, "STATS")) return CmdStats(a);
  if (EqualsIgnoreCase(cmd, "OBSERVE")) return CmdObserve(a);
  if (EqualsIgnoreCase(cmd, "PROFILE")) {
    return WireValue::Str(universe_->ProfileJson());
  }
  if (EqualsIgnoreCase(cmd, "METRICS")) return CmdMetrics(a);
  if (EqualsIgnoreCase(cmd, "BUDGET")) {
    // BUDGET <steps>  |  BUDGET MEM <bytes>
    if (a.size() == 3 && a[1].is_str() && EqualsIgnoreCase(a[1].s, "MEM")) {
      if (a[2].tag != TAG_INT || a[2].i < 0) {
        return WireValue::Err(ERR_BAD_ARG, "usage: BUDGET MEM <bytes>=0..");
      }
      limits->heap_budget = static_cast<uint64_t>(a[2].i);
      return WireValue::Str("OK");
    }
    if (a.size() != 2 || a[1].tag != TAG_INT || a[1].i < 0) {
      return WireValue::Err(ERR_BAD_ARG,
                            "usage: BUDGET <steps>=0.. | BUDGET MEM <bytes>");
    }
    limits->step_budget = static_cast<uint64_t>(a[1].i);
    return WireValue::Str("OK");
  }
  if (EqualsIgnoreCase(cmd, "DEADLINE")) {
    if (a.size() != 2 || a[1].tag != TAG_INT || a[1].i < 0) {
      return WireValue::Err(ERR_BAD_ARG, "usage: DEADLINE <ms>=0.. (0 clears)");
    }
    limits->deadline_ms = static_cast<uint64_t>(a[1].i);
    return WireValue::Str("OK");
  }
  if (EqualsIgnoreCase(cmd, "SHUTDOWN")) {
    *shutdown = true;
    return WireValue::Str("OK");
  }
  return WireValue::Err(ERR_UNKNOWN, "unknown command: " + cmd);
}

WireValue Server::CmdInstall(const std::vector<WireValue>& a) {
  if (a.size() < 3 || a.size() > 4 || !a[1].is_str() || !a[2].is_str() ||
      (a.size() == 4 && !a[3].is_str())) {
    return WireValue::Err(ERR_BAD_ARG,
                          "usage: INSTALL <module> <source> [library|direct]");
  }
  fe::BindingMode mode = fe::BindingMode::kLibrary;
  if (a.size() == 4) {
    if (EqualsIgnoreCase(a[3].s, "DIRECT")) {
      mode = fe::BindingMode::kDirect;
    } else if (!EqualsIgnoreCase(a[3].s, "LIBRARY")) {
      return WireValue::Err(ERR_BAD_ARG, "mode must be library or direct");
    }
  }
  Status st = universe_->InstallSource(a[1].s, a[2].s, mode);
  if (!st.ok()) return StatusToErr(st);
  return WireValue::Str("OK");
}

WireValue Server::CmdLookup(const std::vector<WireValue>& a) {
  if (a.size() != 3 || !a[1].is_str() || !a[2].is_str()) {
    return WireValue::Err(ERR_BAD_ARG, "usage: LOOKUP <module> <function>");
  }
  Result<Oid> oid = universe_->Lookup(a[1].s, a[2].s);
  if (!oid.ok()) return StatusToErr(oid.status());
  return WireValue::Int(static_cast<int64_t>(*oid));
}

WireValue Server::RunToWire(vm::VM* vm, Oid closure,
                            std::span<const vm::Value> args,
                            const SessionLimits& limits) {
  vm->set_step_budget(limits.step_budget);
  vm->set_heap_budget(limits.heap_budget);
  if (limits.deadline_ms != 0) {
    vm->set_run_deadline_ns(vm::VM::MonotonicNowNs() +
                            limits.deadline_ms * 1'000'000ull);
  }
  auto r = vm->RunClosure(vm::Value::OidV(closure), args);
  vm->set_step_budget(0);
  vm->set_heap_budget(0);
  vm->set_run_deadline_ns(0);
  if (!r.ok()) {
    // Resource kills are operator-interesting incidents: the flight
    // recorder notes them (and auto-dumps the last seconds of activity
    // when TYCOON_FLIGHT_DIR / --flight-dir is configured).
    if (r.status().code() == StatusCode::kOutOfRange) {
      telemetry::FlightRecorder::Global().NoteIncident("budget_kill");
      return WireValue::Err(ERR_BUDGET, r.status().ToString());
    }
    if (r.status().code() == StatusCode::kDeadline) {
      telemetry::FlightRecorder::Global().NoteIncident("deadline_kill");
      return WireValue::Err(ERR_DEADLINE, r.status().ToString());
    }
    return WireValue::Err(ERR_RUNTIME, r.status().ToString());
  }
  if (r->raised) {
    if (vm->oom_raised()) {
      // The heap-budget fault escaped every TML handler: classify it for
      // the wire so a client can tell OOM from an application raise.
      telemetry::FlightRecorder::Global().NoteIncident("oom_kill");
      return WireValue::Err(ERR_OOM, "out of memory: " +
                                         vm::ToString(r->value));
    }
    return WireValue::Err(ERR_RAISED, "uncaught TML exception: " +
                                          vm::ToString(r->value));
  }
  return VmToWire(r->value);
}

WireValue Server::CmdCall(vm::VM* vm, const std::vector<WireValue>& a,
                          const SessionLimits& limits) {
  if (a.size() < 3 || !a[1].is_str() || !a[2].is_str()) {
    return WireValue::Err(ERR_BAD_ARG,
                          "usage: CALL <module> <function> [args...]");
  }
  Result<Oid> oid = universe_->Lookup(a[1].s, a[2].s);
  if (!oid.ok()) return StatusToErr(oid.status());
  std::vector<vm::Value> args;
  args.reserve(a.size() - 3);
  for (size_t k = 3; k < a.size(); ++k) {
    auto v = WireToVm(vm, a[k]);
    if (!v.ok()) return WireValue::Err(ERR_BAD_ARG, v.status().ToString());
    args.push_back(*v);
  }
  return RunToWire(vm, *oid, args, limits);
}

WireValue Server::CmdCallOid(vm::VM* vm, const std::vector<WireValue>& a,
                             const SessionLimits& limits) {
  if (a.size() < 2 || a[1].tag != TAG_INT) {
    return WireValue::Err(ERR_BAD_ARG, "usage: CALLOID <oid> [args...]");
  }
  std::vector<vm::Value> args;
  args.reserve(a.size() - 2);
  for (size_t k = 2; k < a.size(); ++k) {
    auto v = WireToVm(vm, a[k]);
    if (!v.ok()) return WireValue::Err(ERR_BAD_ARG, v.status().ToString());
    args.push_back(*v);
  }
  return RunToWire(vm, static_cast<Oid>(a[1].i), args, limits);
}

WireValue Server::CmdOptimize(const std::vector<WireValue>& a) {
  if (a.size() != 3 || !a[1].is_str() || !a[2].is_str()) {
    return WireValue::Err(ERR_BAD_ARG, "usage: OPTIMIZE <module> <function>");
  }
  Result<Oid> oid = universe_->Lookup(a[1].s, a[2].s);
  if (!oid.ok()) return StatusToErr(oid.status());
  // Mirror the adaptive manager's promotion protocol: snapshot the binding
  // generation before optimizing so a concurrent install voids the swap
  // instead of installing stale code.
  uint64_t gen = universe_->binding_generation();
  Result<Oid> optimized = universe_->ReflectOptimize(*oid);
  if (!optimized.ok()) return StatusToErr(optimized.status());
  Result<bool> swapped = universe_->SwapCode(*oid, *optimized, gen);
  if (!swapped.ok()) return StatusToErr(swapped.status());
  return WireValue::Arr({WireValue::Int(static_cast<int64_t>(*optimized)),
                         WireValue::Str(*swapped ? "swapped" : "stale")});
}

WireValue Server::CmdRelStore(const std::vector<WireValue>& a) {
  if (a.size() != 3 || a[1].tag != TAG_ARR || a[2].tag != TAG_ARR) {
    return WireValue::Err(
        ERR_BAD_ARG, "usage: RELSTORE <[column names]> <[[row fields]...]>");
  }
  query::Relation rel;
  for (const WireValue& name : a[1].elems) {
    if (!name.is_str()) {
      return WireValue::Err(ERR_BAD_ARG, "column names must be strings");
    }
    rel.columns.push_back(name.s);
  }
  for (const WireValue& row : a[2].elems) {
    if (row.tag != TAG_ARR || row.elems.size() != rel.columns.size()) {
      return WireValue::Err(ERR_BAD_ARG,
                            "each row must be an array of arity fields");
    }
    query::Tuple t;
    for (const WireValue& f : row.elems) {
      switch (f.tag) {
        case TAG_NIL: t.emplace_back(std::monostate{}); break;
        case TAG_INT: t.emplace_back(f.i); break;
        case TAG_DBL: t.emplace_back(f.d); break;
        case TAG_STR: t.emplace_back(f.s); break;
        default:
          return WireValue::Err(ERR_BAD_ARG,
                                "row fields must be nil/int/dbl/str");
      }
    }
    rel.tuples.push_back(std::move(t));
  }
  Result<Oid> oid = universe_->StoreRelationBytes(query::EncodeRelation(rel));
  if (!oid.ok()) return StatusToErr(oid.status());
  return WireValue::Int(static_cast<int64_t>(*oid));
}

WireValue Server::CmdQuery(vm::VM* vm, const std::vector<WireValue>& a,
                           const SessionLimits& limits) {
  if (a.size() != 4 || !a[1].is_str() || !a[2].is_str() ||
      a[3].tag != TAG_INT) {
    return WireValue::Err(
        ERR_BAD_ARG, "usage: QUERY <module> <function> <relation oid>");
  }
  Result<Oid> fn = universe_->Lookup(a[1].s, a[2].s);
  if (!fn.ok()) return StatusToErr(fn.status());
  // The relation travels as an OID; the worker VM swizzles it through the
  // shared runtime environment on first touch, like any persistent datum.
  vm::Value arg = vm::Value::OidV(static_cast<Oid>(a[3].i));
  return RunToWire(vm, *fn, std::span<const vm::Value>(&arg, 1), limits);
}

WireValue Server::CmdStats(const std::vector<WireValue>& a) {
  if (a.size() > 2 || (a.size() == 2 && !a[1].is_str())) {
    return WireValue::Err(ERR_BAD_ARG, "usage: STATS [slow]");
  }
  if (a.size() == 2) {
    if (!EqualsIgnoreCase(a[1].s, "SLOW")) {
      return WireValue::Err(ERR_BAD_ARG, "usage: STATS [slow]");
    }
    return WireValue::Str(SlowRequestsJson());
  }
  return WireValue::Str(universe_->TelemetrySnapshot().ToJson());
}

WireValue Server::CmdObserve(const std::vector<WireValue>& a) {
  // OBSERVE [seconds]: the flight recorder's retained window (bounded to
  // the trailing `seconds` when given) as Chrome trace JSON.
  if (a.size() > 2 || (a.size() == 2 && (a[1].tag != TAG_INT || a[1].i < 0))) {
    return WireValue::Err(ERR_BAD_ARG, "usage: OBSERVE [seconds]");
  }
  uint64_t window_ns = 0;
  if (a.size() == 2) {
    window_ns = static_cast<uint64_t>(a[1].i) * 1'000'000'000ull;
  }
  return WireValue::Str(
      telemetry::FlightRecorder::Global().DumpChromeJson(window_ns));
}

WireValue Server::CmdMetrics(const std::vector<WireValue>& a) {
  // METRICS [prom|text|json]: the full registry in Prometheus exposition
  // (default — the same payload the --metrics-port listener scrapes),
  // aligned text, or JSON.
  enum { kProm, kText, kJson } fmt = kProm;
  if (a.size() > 2 || (a.size() == 2 && !a[1].is_str())) {
    return WireValue::Err(ERR_BAD_ARG, "usage: METRICS [prom|text|json]");
  }
  if (a.size() == 2) {
    if (EqualsIgnoreCase(a[1].s, "TEXT")) {
      fmt = kText;
    } else if (EqualsIgnoreCase(a[1].s, "JSON")) {
      fmt = kJson;
    } else if (!EqualsIgnoreCase(a[1].s, "PROM")) {
      return WireValue::Err(ERR_BAD_ARG, "usage: METRICS [prom|text|json]");
    }
  }
  telemetry::RefreshObservabilityGauges();
  std::vector<telemetry::MetricSample> samples =
      telemetry::Registry::Global().Snapshot();
  switch (fmt) {
    case kText: return WireValue::Str(telemetry::FormatText(samples));
    case kJson: return WireValue::Str(telemetry::FormatJson(samples));
    default: return WireValue::Str(telemetry::FormatPrometheus(samples));
  }
}

void Server::NoteSlow(const char* cmd, uint64_t us, uint64_t session_id) {
  MSlowRequests()->Increment();
  // Slow requests also mark the flight timeline, so an OBSERVE dump shows
  // *where* in the recent activity the outlier happened.
  auto& flight = telemetry::FlightRecorder::Global();
  uint64_t now_ns = telemetry::Tracer::NowNs();
  if (flight.enabled()) flight.Record("server", "server.slow", now_ns, 0);
  std::lock_guard<std::mutex> lock(slow_mu_);
  SlowRequest r{cmd, us, now_ns, session_id};
  auto it = std::upper_bound(
      slow_log_.begin(), slow_log_.end(), r,
      [](const SlowRequest& x, const SlowRequest& y) { return x.us > y.us; });
  slow_log_.insert(it, r);
  if (slow_log_.size() > opts_.slow_log_size) slow_log_.resize(opts_.slow_log_size);
}

std::string Server::SlowRequestsJson() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  std::string out = "[";
  for (size_t k = 0; k < slow_log_.size(); ++k) {
    const SlowRequest& r = slow_log_[k];
    if (k != 0) out += ',';
    out += "{\"cmd\":\"" + std::string(r.cmd) +
           "\",\"us\":" + std::to_string(r.us) +
           ",\"ts_ns\":" + std::to_string(r.ts_ns) +
           ",\"session\":" + std::to_string(r.session_id) + "}";
  }
  out += "]";
  return out;
}

}  // namespace tml::server
